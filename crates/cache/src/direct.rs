//! Direct-mapped cache keyed by `u64`, modelling the SSD-side embedding
//! cache of §4.2.

use recssd_sim::rng::mix64;
use recssd_sim::stats::HitStats;

/// A direct-mapped cache: each key hashes to exactly one slot; a colliding
/// insert silently replaces the previous resident.
///
/// The paper's firmware uses this shape deliberately: "The SSD FTL is
/// designed without dynamic memory allocation ... the cost of maintaining
/// LRU or pseudo LRU information on every access must be balanced against
/// cache hit-rate gains. For the current evaluations we implement a
/// direct-mapped SSD-side DRAM cache." Slot storage here is likewise
/// allocated once, up front.
///
/// # Example
///
/// ```
/// use recssd_cache::DirectMappedCache;
/// let mut c: DirectMappedCache<&str> = DirectMappedCache::new(1024);
/// c.insert(42, "vector");
/// assert_eq!(c.get(42), Some(&"vector"));
/// assert_eq!(c.get(43), None);
/// ```
#[derive(Debug)]
pub struct DirectMappedCache<V> {
    slots: Vec<Option<(u64, V)>>,
    stats: HitStats,
}

impl<V> DirectMappedCache<V> {
    /// Creates a cache with `slots` slots, all empty.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "direct-mapped cache needs at least one slot");
        DirectMappedCache {
            slots: (0..slots).map(|_| None).collect(),
            stats: HitStats::new(),
        }
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// `true` if every slot is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// Accumulated hit/miss statistics (updated by
    /// [`DirectMappedCache::get`]).
    pub fn stats(&self) -> HitStats {
        self.stats
    }

    /// Resets statistics without touching contents.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn slot_of(&self, key: u64) -> usize {
        (mix64(key) % self.slots.len() as u64) as usize
    }

    /// Looks up `key`, recording a hit or miss. A different key resident in
    /// the same slot is a miss (conflict).
    pub fn get(&mut self, key: u64) -> Option<&V> {
        let slot = self.slot_of(key);
        match &self.slots[slot] {
            Some((k, _)) if *k == key => {
                self.stats.hit();
                self.slots[slot].as_ref().map(|(_, v)| v)
            }
            _ => {
                self.stats.miss();
                None
            }
        }
    }

    /// Looks up `key` without statistics side effects.
    pub fn peek(&self, key: u64) -> Option<&V> {
        match &self.slots[self.slot_of(key)] {
            Some((k, v)) if *k == key => Some(v),
            _ => None,
        }
    }

    /// Inserts `key → value`, returning whatever previously occupied the
    /// slot (possibly a different key — a conflict eviction).
    pub fn insert(&mut self, key: u64, value: V) -> Option<(u64, V)> {
        let slot = self.slot_of(key);
        self.slots[slot].replace((key, value))
    }

    /// Removes `key` if it is the slot's resident.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let slot = self.slot_of(key);
        match &self.slots[slot] {
            Some((k, _)) if *k == key => self.slots[slot].take().map(|(_, v)| v),
            _ => None,
        }
    }

    /// Empties every slot, keeping statistics.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_round_trip() {
        let mut c: DirectMappedCache<u32> = DirectMappedCache::new(64);
        assert!(c.is_empty());
        c.insert(1, 10);
        assert_eq!(c.get(1), Some(&10));
        assert_eq!(c.peek(1), Some(&10));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn conflicting_keys_evict_each_other() {
        let mut c: DirectMappedCache<u32> = DirectMappedCache::new(4);
        // Find a key that collides with key 0.
        let collide = (1..100_000u64)
            .find(|&k| recssd_sim::rng::mix64(k) % 4 == recssd_sim::rng::mix64(0) % 4)
            .expect("collision exists in a 4-slot cache");
        c.insert(0, 1);
        let evicted = c.insert(collide, 2);
        assert_eq!(evicted, Some((0, 1)));
        assert_eq!(c.get(0), None, "conflict evicted key 0");
        assert_eq!(c.get(collide), Some(&2));
    }

    #[test]
    fn wrong_key_in_slot_is_a_miss() {
        let mut c: DirectMappedCache<u32> = DirectMappedCache::new(1);
        c.insert(7, 70);
        assert_eq!(c.get(8), None);
        assert_eq!(c.stats().misses(), 1);
        assert_eq!(c.get(7), Some(&70));
        assert_eq!(c.stats().hits(), 1);
    }

    #[test]
    fn remove_only_removes_matching_key() {
        let mut c: DirectMappedCache<u32> = DirectMappedCache::new(1);
        c.insert(7, 70);
        assert_eq!(c.remove(8), None);
        assert_eq!(c.remove(7), Some(70));
        assert!(c.is_empty());
    }

    #[test]
    fn clear_and_reset() {
        let mut c: DirectMappedCache<u32> = DirectMappedCache::new(8);
        c.insert(1, 1);
        c.get(1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().hits(), 1, "clear keeps stats");
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn hit_rate_below_lru_for_skewed_reuse() {
        // A direct-mapped cache of the same capacity must not beat full LRU
        // on a small looping working set (the effect Figure 10 shows:
        // "the direct mapped caching hit rate cannot match that of the more
        // complex fully associative LRU cache").
        use crate::LruCache;
        use recssd_sim::rng::Xoshiro256;
        let cap = 64;
        let mut dm: DirectMappedCache<()> = DirectMappedCache::new(cap);
        let mut lru = LruCache::new(cap);
        let mut rng = Xoshiro256::seed_from(11);
        // Working set slightly smaller than the cache: LRU gets ~100%.
        for _ in 0..20_000 {
            let key = rng.gen_range(0..48);
            if dm.get(key).is_none() {
                dm.insert(key, ());
            }
            if lru.get(&key).is_none() {
                lru.insert(key, ());
            }
        }
        assert!(
            lru.stats().hit_rate() > dm.stats().hit_rate(),
            "LRU {:.3} should beat direct-mapped {:.3}",
            lru.stats().hit_rate(),
            dm.stats().hit_rate()
        );
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        let _: DirectMappedCache<()> = DirectMappedCache::new(0);
    }
}
