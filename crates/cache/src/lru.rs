//! Fully associative LRU cache with O(1) operations.

use std::collections::HashMap;
use std::hash::Hash;

use recssd_sim::stats::HitStats;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fully associative least-recently-used cache.
///
/// Backed by a hash map plus an intrusive doubly-linked recency list over a
/// slab, so `get`/`insert`/`remove` are O(1). Used for the host-side
/// embedding cache of the baseline system and for the FTL's internal page
/// cache.
///
/// # Example
///
/// ```
/// use recssd_cache::LruCache;
/// let mut c = LruCache::new(2);
/// c.insert(1, "one");
/// c.insert(2, "two");
/// assert_eq!(c.get(&1), Some(&"one")); // 1 is now most recent
/// c.insert(3, "three");                // evicts 2
/// assert!(c.get(&2).is_none());
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.stats().hits(), 1);
/// assert_eq!(c.stats().misses(), 1);
/// ```
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Option<Node<K, V>>>,
    free: Vec<usize>,
    head: usize, // most recent
    tail: usize, // least recent
    capacity: usize,
    stats: HitStats,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU cache capacity must be positive");
        LruCache {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            stats: HitStats::new(),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Accumulated hit/miss statistics (updated by [`LruCache::get`] only).
    pub fn stats(&self) -> HitStats {
        self.stats
    }

    /// Resident fraction: `len / capacity`, in `[0, 1]`. Serving telemetry
    /// reports this alongside the hit rate so a cold (still-filling) cache
    /// is distinguishable from a thrashing one.
    pub fn occupancy(&self) -> f64 {
        self.map.len() as f64 / self.capacity as f64
    }

    /// Resets hit/miss statistics without touching contents.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn node(&self, idx: usize) -> &Node<K, V> {
        self.slab[idx].as_ref().expect("linked slot must be live")
    }

    fn node_mut(&mut self, idx: usize) -> &mut Node<K, V> {
        self.slab[idx].as_mut().expect("linked slot must be live")
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let n = self.node(idx);
            (n.prev, n.next)
        };
        if prev != NIL {
            self.node_mut(prev).next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.node_mut(next).prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        let old_head = self.head;
        {
            let n = self.node_mut(idx);
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.node_mut(old_head).prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    /// Looks up `key`, marking it most-recently-used and recording a hit or
    /// miss.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.stats.hit();
                self.touch(idx);
                Some(&self.node(idx).value)
            }
            None => {
                self.stats.miss();
                None
            }
        }
    }

    /// Looks up `key` without touching recency or statistics.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.node(idx).value)
    }

    /// `true` if `key` is cached (no recency/statistics side effects).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts `key → value`, marking it most-recently-used. Returns the
    /// evicted least-recently-used entry if the cache was full, or the
    /// previous `(key, value)` if `key` was already present.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            let old = std::mem::replace(&mut self.node_mut(idx).value, value);
            self.touch(idx);
            return Some((key, old));
        }
        let evicted = if self.map.len() == self.capacity {
            let lru = self.tail;
            self.unlink(lru);
            let node = self.slab[lru].take().expect("tail slot must be live");
            self.map.remove(&node.key);
            self.free.push(lru);
            Some((node.key, node.value))
        } else {
            None
        };
        let node = Node {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Some(node);
                i
            }
            None => {
                self.slab.push(Some(node));
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        let node = self.slab[idx].take().expect("mapped slot must be live");
        self.free.push(idx);
        Some(node.value)
    }

    /// Iterates entries from most- to least-recently-used.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            cache: self,
            cursor: self.head,
        }
    }

    /// Removes every entry, keeping statistics.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

/// Iterator over cache entries in recency order (most recent first).
#[derive(Debug)]
pub struct Iter<'a, K, V> {
    cache: &'a LruCache<K, V>,
    cursor: usize,
}

impl<'a, K: Eq + Hash + Clone, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let node = self.cache.node(self.cursor);
        self.cursor = node.next;
        Some((&node.key, &node.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(3);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        c.get(&1);
        let evicted = c.insert(4, 40);
        assert_eq!(evicted, Some((2, 20)));
        assert!(c.contains(&1) && c.contains(&3) && c.contains(&4));
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        let old = c.insert(1, 11);
        assert_eq!(old, Some((1, 10)));
        c.insert(3, 30); // evicts 2, since 1 was refreshed
        assert!(c.contains(&1));
        assert!(!c.contains(&2));
        assert_eq!(c.peek(&1), Some(&11));
    }

    #[test]
    fn peek_does_not_disturb_recency_or_stats() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.peek(&1), Some(&10));
        assert_eq!(c.stats().accesses(), 0);
        c.insert(3, 30); // 1 is still LRU, gets evicted
        assert!(!c.contains(&1));
    }

    #[test]
    fn remove_detaches_entry() {
        let mut c = LruCache::new(3);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        assert_eq!(c.remove(&2), Some(20));
        assert_eq!(c.remove(&2), None);
        assert_eq!(c.len(), 2);
        // Linked list is still intact around the removed node.
        let keys: Vec<i32> = c.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![3, 1]);
        // Slot is reused.
        c.insert(4, 40);
        assert_eq!(c.len(), 3);
        assert!(c.slab.len() <= 3);
    }

    #[test]
    fn remove_head_and_tail() {
        let mut c = LruCache::new(3);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        assert_eq!(c.remove(&3), Some(30)); // head
        assert_eq!(c.remove(&1), Some(10)); // tail
        let keys: Vec<i32> = c.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![2]);
        assert_eq!(c.remove(&2), Some(20));
        assert!(c.is_empty());
        assert_eq!(c.iter().count(), 0);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.get(&1);
        c.get(&2);
        c.get(&1);
        assert_eq!(c.stats().hits(), 2);
        assert_eq!(c.stats().misses(), 1);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn occupancy_tracks_resident_fraction() {
        let mut c = LruCache::new(4);
        assert_eq!(c.occupancy(), 0.0);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.occupancy(), 0.5);
        for i in 0..10 {
            c.insert(i, i);
        }
        assert_eq!(c.occupancy(), 1.0, "full cache stays at 1.0");
    }

    #[test]
    fn iter_walks_recency_order() {
        let mut c = LruCache::new(3);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        c.get(&1);
        let keys: Vec<i32> = c.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 3, 2]);
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.clear();
        assert!(c.is_empty());
        assert!(!c.contains(&1));
        c.insert(2, 20);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn single_entry_cache() {
        let mut c = LruCache::new(1);
        assert_eq!(c.insert(1, 10), None);
        assert_eq!(c.insert(2, 20), Some((1, 10)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&2), Some(&20));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = LruCache::<u64, ()>::new(0);
    }

    #[test]
    fn slab_slots_are_reused_after_eviction() {
        let mut c = LruCache::new(4);
        for i in 0..1000u64 {
            c.insert(i, i);
        }
        assert_eq!(c.len(), 4);
        assert!(c.slab.len() <= 5, "slab grew to {}", c.slab.len());
        let keys: Vec<u64> = c.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![999, 998, 997, 996]);
    }

    /// Cross-check against a naive reference implementation.
    #[test]
    fn matches_reference_model_under_mixed_workload() {
        use recssd_sim::rng::Xoshiro256;
        let mut rng = Xoshiro256::seed_from(99);
        let cap = 8;
        let mut lru = LruCache::new(cap);
        let mut reference: Vec<(u64, u64)> = Vec::new(); // front = most recent
        for step in 0..5000u64 {
            let key = rng.gen_range(0..24);
            match rng.gen_range(0..3) {
                0 => {
                    let got = lru.get(&key).copied();
                    let pos = reference.iter().position(|&(k, _)| k == key);
                    let want = pos.map(|p| {
                        let e = reference.remove(p);
                        reference.insert(0, e);
                        e.1
                    });
                    assert_eq!(got, want, "get({key}) diverged at step {step}");
                }
                1 => {
                    lru.insert(key, step);
                    if let Some(p) = reference.iter().position(|&(k, _)| k == key) {
                        reference.remove(p);
                    } else if reference.len() == cap {
                        reference.pop();
                    }
                    reference.insert(0, (key, step));
                }
                _ => {
                    let got = lru.remove(&key);
                    let pos = reference.iter().position(|&(k, _)| k == key);
                    let want = pos.map(|p| reference.remove(p).1);
                    assert_eq!(got, want, "remove({key}) diverged at step {step}");
                }
            }
            assert_eq!(lru.len(), reference.len());
        }
    }
}
