//! Freezing a heat profile into a placement plan.

use std::ops::Range;

use recssd_cache::StaticPartition;

use crate::{FreqProfiler, TableHeat};

/// How much of each table the plan may pin into the host DRAM tier.
#[derive(Debug, Clone, Copy)]
pub struct PlacementPolicy {
    budget: Budget,
}

#[derive(Debug, Clone, Copy)]
enum Budget {
    Fraction(f64),
    Rows(usize),
}

impl PlacementPolicy {
    /// Pin the hottest `fraction` of each table's rows (0 disables the
    /// DRAM tier; packing still applies).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= fraction <= 1`.
    pub fn hot_fraction(fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "hot fraction must lie in [0, 1]"
        );
        PlacementPolicy {
            budget: Budget::Fraction(fraction),
        }
    }

    /// Pin at most `rows` hot rows per table (an absolute DRAM budget).
    pub fn hot_rows(rows: usize) -> Self {
        PlacementPolicy {
            budget: Budget::Rows(rows),
        }
    }

    /// The hot-row budget for a table of `rows` rows.
    pub fn budget_for(&self, rows: u64) -> usize {
        match self.budget {
            Budget::Fraction(f) => (f * rows as f64).round() as usize,
            Budget::Rows(n) => n.min(rows as usize),
        }
    }
}

/// The frozen placement of one table: which rows are DRAM-resident and
/// how the cold tail is ordered on flash.
#[derive(Debug, Clone)]
pub struct TablePlacement {
    rows: u64,
    /// Hot rows in descending heat order (tier-local row `j` of the DRAM
    /// tier's gather view holds parent row `hot_rows[j]`).
    hot_rows: Vec<u64>,
    /// Membership test for "resident in host DRAM" (never changes at
    /// inference time — the property that lets the router decide before
    /// issuing any device command).
    partition: StaticPartition,
    /// Global heat rank per row (0 = hottest); the packing key.
    heat_rank: Vec<u32>,
    /// Fraction of profiled accesses landing on the hot set.
    expected_hit_rate: f64,
}

impl TablePlacement {
    /// Builds the placement of one table under `policy`.
    ///
    /// The hot set is the `policy` budget's worth of hottest rows that
    /// were *actually accessed* during profiling (pinning never-accessed
    /// rows would spend DRAM on rows the profile says are dead).
    pub fn build(heat: &TableHeat, policy: &PlacementPolicy) -> Self {
        let rows = heat.rows();
        let budget = policy.budget_for(rows);
        let ranking = heat.ranking();
        let mut heat_rank = vec![0u32; rows as usize];
        for (i, &r) in ranking.iter().enumerate() {
            heat_rank[r as usize] = i as u32;
        }
        let hot_rows: Vec<u64> = ranking
            .into_iter()
            .take(budget)
            .filter(|&r| heat.count(r) > 0)
            .collect();
        // One selection is the source of truth: the membership partition
        // is built from the very rows the tier will hold.
        let partition =
            StaticPartition::from_hot_ids(hot_rows.iter().copied(), heat.accessed_rows());
        let hot_mass: u64 = hot_rows.iter().map(|&r| heat.count(r)).sum();
        let expected_hit_rate = if heat.total() == 0 {
            0.0
        } else {
            hot_mass as f64 / heat.total() as f64
        };
        TablePlacement {
            rows,
            hot_rows,
            partition,
            heat_rank,
            expected_hit_rate,
        }
    }

    /// Rows in the placed table.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Hot rows in descending heat order.
    pub fn hot_rows(&self) -> &[u64] {
        &self.hot_rows
    }

    /// Number of DRAM-resident rows.
    pub fn hot_count(&self) -> usize {
        self.hot_rows.len()
    }

    /// `true` if `row` is pinned in the DRAM tier.
    pub fn is_hot(&self, row: u64) -> bool {
        self.partition.is_hot(row)
    }

    /// The underlying membership partition.
    pub fn partition(&self) -> &StaticPartition {
        &self.partition
    }

    /// Fraction of profiled accesses the hot set would have absorbed —
    /// the DRAM tier's asymptotic hit rate on stationary traffic.
    pub fn expected_hit_rate(&self) -> f64 {
        self.expected_hit_rate
    }

    /// Frequency-ordered page packing of one row range (a shard's slice):
    /// returns range-local rows in *storage order* — the hottest cold
    /// rows first, so the still-accessed head of the cold tail shares
    /// flash pages under a dense layout, and the DRAM-resident hot rows
    /// last (flash copies that serving traffic never touches).
    ///
    /// The result is a permutation of `0..range.len()`: storage slot `s`
    /// holds range-local row `pack[s]`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty or exceeds the table.
    pub fn pack_order(&self, range: Range<u64>) -> Vec<u64> {
        assert!(
            range.start < range.end && range.end <= self.rows,
            "pack range {range:?} out of range for a {}-row table",
            self.rows
        );
        let start = range.start;
        let mut rows: Vec<u64> = range.collect();
        rows.sort_by_key(|&r| (self.is_hot(r), self.heat_rank[r as usize]));
        for r in &mut rows {
            *r -= start;
        }
        rows
    }
}

/// The full multi-table plan: one [`TablePlacement`] per profiled table,
/// in profile order.
#[derive(Debug, Clone)]
pub struct PlacementPlan {
    tables: Vec<TablePlacement>,
}

impl PlacementPlan {
    /// Freezes `profiler`'s counts into per-table placements.
    pub fn build(profiler: &FreqProfiler, policy: &PlacementPolicy) -> Self {
        PlacementPlan {
            tables: (0..profiler.tables())
                .map(|t| TablePlacement::build(profiler.heat(t), policy))
                .collect(),
        }
    }

    /// The placement of table `i` (profile order).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn table(&self, i: usize) -> &TablePlacement {
        &self.tables[i]
    }

    /// Number of placed tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` if the plan places no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterates the placements in profile order.
    pub fn iter(&self) -> impl Iterator<Item = &TablePlacement> {
        self.tables.iter()
    }

    /// Total DRAM-resident rows across tables.
    pub fn total_hot_rows(&self) -> usize {
        self.tables.iter().map(|t| t.hot_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiled(rows: u64, stream: impl IntoIterator<Item = u64>) -> FreqProfiler {
        let mut p = FreqProfiler::new();
        let t = p.add_table(rows);
        p.profile_stream(t, stream);
        p
    }

    #[test]
    fn hot_set_is_top_k_accessed_rows() {
        let p = profiled(10, [5, 5, 5, 2, 2, 8]);
        let plan = PlacementPlan::build(&p, &PlacementPolicy::hot_rows(2));
        let t = plan.table(0);
        assert_eq!(t.hot_rows(), &[5, 2]);
        assert!(t.is_hot(5) && t.is_hot(2) && !t.is_hot(8));
        assert!((t.expected_hit_rate() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn budget_never_pins_unaccessed_rows() {
        let p = profiled(100, [1, 1, 3]);
        // 50-row budget, but only two rows were ever touched.
        let plan = PlacementPlan::build(&p, &PlacementPolicy::hot_fraction(0.5));
        let t = plan.table(0);
        assert_eq!(t.hot_count(), 2);
        assert_eq!(t.hot_rows(), &[1, 3]);
        assert!((t.expected_hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_fraction_disables_the_tier() {
        let p = profiled(10, [1, 2, 3]);
        let plan = PlacementPlan::build(&p, &PlacementPolicy::hot_fraction(0.0));
        assert_eq!(plan.table(0).hot_count(), 0);
        assert_eq!(plan.total_hot_rows(), 0);
    }

    #[test]
    fn pack_order_is_a_cold_first_heat_ordered_permutation() {
        // Heat: row 4 (3x), row 1 (2x), row 6 (1x); hot budget 1 pins 4.
        let p = profiled(8, [4, 4, 4, 1, 1, 6]);
        let plan = PlacementPlan::build(&p, &PlacementPolicy::hot_rows(1));
        let t = plan.table(0);
        let pack = t.pack_order(0..8);
        let mut sorted = pack.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "must be a permutation");
        // Cold rows by heat (1, 6, then untouched 0,2,3,5,7 by id), hot 4 last.
        assert_eq!(pack, vec![1, 6, 0, 2, 3, 5, 7, 4]);

        // A sub-range is local to its start.
        let pack = t.pack_order(4..8);
        assert_eq!(pack, vec![2, 1, 3, 0]); // local: 6→2 first, then 5,7 cold, 4→0 last
    }

    #[test]
    fn fraction_budget_rounds_on_table_size() {
        let pol = PlacementPolicy::hot_fraction(0.1);
        assert_eq!(pol.budget_for(4096), 410);
        assert_eq!(pol.budget_for(5), 1); // 0.5 rounds up
        assert_eq!(PlacementPolicy::hot_rows(7).budget_for(5), 5);
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn fraction_above_one_rejected() {
        PlacementPolicy::hot_fraction(1.5);
    }

    #[test]
    #[should_panic(expected = "out of range for a")]
    fn pack_range_out_of_bounds_panics() {
        let p = profiled(4, [0]);
        PlacementPlan::build(&p, &PlacementPolicy::hot_rows(1))
            .table(0)
            .pack_order(0..5);
    }
}
