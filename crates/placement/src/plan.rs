//! Freezing a heat profile into a placement plan.

use std::collections::BinaryHeap;
use std::ops::Range;

use recssd_cache::StaticPartition;

use crate::{FreqProfiler, TableHeat};

/// Monotone identity of one plan generation. Serving state double-buffers
/// on this: requests admitted under version `v` finish under `v` even
/// after a newer plan activates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PlanVersion(pub u64);

impl PlanVersion {
    /// The next version.
    pub fn next(self) -> PlanVersion {
        PlanVersion(self.0 + 1)
    }
}

/// How much of each table the plan may pin into the host DRAM tier.
#[derive(Debug, Clone, Copy)]
pub struct PlacementPolicy {
    budget: Budget,
}

#[derive(Debug, Clone, Copy)]
enum Budget {
    Fraction(f64),
    Rows(usize),
}

impl PlacementPolicy {
    /// Pin the hottest `fraction` of each table's rows (0 disables the
    /// DRAM tier; packing still applies).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= fraction <= 1`.
    pub fn hot_fraction(fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "hot fraction must lie in [0, 1]"
        );
        PlacementPolicy {
            budget: Budget::Fraction(fraction),
        }
    }

    /// Pin at most `rows` hot rows per table (an absolute DRAM budget).
    pub fn hot_rows(rows: usize) -> Self {
        PlacementPolicy {
            budget: Budget::Rows(rows),
        }
    }

    /// The hot-row budget for a table of `rows` rows.
    pub fn budget_for(&self, rows: u64) -> usize {
        match self.budget {
            Budget::Fraction(f) => (f * rows as f64).round() as usize,
            Budget::Rows(n) => n.min(rows as usize),
        }
    }
}

/// The frozen placement of one table: which rows are DRAM-resident and
/// how the cold tail is ordered on flash.
#[derive(Debug, Clone)]
pub struct TablePlacement {
    rows: u64,
    /// Hot rows in descending heat order (tier-local row `j` of the DRAM
    /// tier's gather view holds parent row `hot_rows[j]`).
    hot_rows: Vec<u64>,
    /// Membership test for "resident in host DRAM" (never changes at
    /// inference time — the property that lets the router decide before
    /// issuing any device command).
    partition: StaticPartition,
    /// Global heat rank per row (0 = hottest); the packing key.
    heat_rank: Vec<u32>,
    /// Fraction of profiled accesses landing on the hot set.
    expected_hit_rate: f64,
}

impl TablePlacement {
    /// Builds the placement of one table under `policy`.
    ///
    /// The hot set is the `policy` budget's worth of hottest rows that
    /// were *actually accessed* during profiling (pinning never-accessed
    /// rows would spend DRAM on rows the profile says are dead).
    pub fn build(heat: &TableHeat, policy: &PlacementPolicy) -> Self {
        let rows = heat.rows();
        let budget = policy.budget_for(rows);
        let ranking = heat.ranking();
        let mut heat_rank = vec![0u32; rows as usize];
        for (i, &r) in ranking.iter().enumerate() {
            heat_rank[r as usize] = i as u32;
        }
        let hot_rows: Vec<u64> = ranking
            .into_iter()
            .take(budget)
            .filter(|&r| heat.count(r) > 0)
            .collect();
        // One selection is the source of truth: the membership partition
        // is built from the very rows the tier will hold.
        let partition =
            StaticPartition::from_hot_ids(hot_rows.iter().copied(), heat.accessed_rows());
        let hot_mass: u64 = hot_rows.iter().map(|&r| heat.count(r)).sum();
        let expected_hit_rate = if heat.total() == 0 {
            0.0
        } else {
            hot_mass as f64 / heat.total() as f64
        };
        TablePlacement {
            rows,
            hot_rows,
            partition,
            heat_rank,
            expected_hit_rate,
        }
    }

    /// Builds the placement of one table from an *explicit* hot set (in
    /// the order the DRAM tier should lay the rows out, hottest first).
    /// The online re-planning loop uses this when the hot set is not a
    /// pure top-k of the profile — e.g. keeping incumbent rows that the
    /// thin online sample merely failed to observe. Heat ranks (the
    /// packing key) still come from `heat`.
    ///
    /// # Panics
    ///
    /// Panics if a hot row is out of range.
    pub fn build_with_hot_rows(heat: &TableHeat, hot_rows: Vec<u64>) -> Self {
        let rows = heat.rows();
        assert!(
            hot_rows.iter().all(|&r| r < rows),
            "hot row out of range for a {rows}-row table"
        );
        let ranking = heat.ranking();
        let mut heat_rank = vec![0u32; rows as usize];
        for (i, &r) in ranking.iter().enumerate() {
            heat_rank[r as usize] = i as u32;
        }
        let partition =
            StaticPartition::from_hot_ids(hot_rows.iter().copied(), heat.accessed_rows());
        let hot_mass: u64 = hot_rows.iter().map(|&r| heat.count(r)).sum();
        let expected_hit_rate = if heat.total() == 0 {
            0.0
        } else {
            hot_mass as f64 / heat.total() as f64
        };
        TablePlacement {
            rows,
            hot_rows,
            partition,
            heat_rank,
            expected_hit_rate,
        }
    }

    /// Rows in the placed table.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Hot rows in descending heat order.
    pub fn hot_rows(&self) -> &[u64] {
        &self.hot_rows
    }

    /// Number of DRAM-resident rows.
    pub fn hot_count(&self) -> usize {
        self.hot_rows.len()
    }

    /// `true` if `row` is pinned in the DRAM tier.
    pub fn is_hot(&self, row: u64) -> bool {
        self.partition.is_hot(row)
    }

    /// The underlying membership partition.
    pub fn partition(&self) -> &StaticPartition {
        &self.partition
    }

    /// Fraction of profiled accesses the hot set would have absorbed —
    /// the DRAM tier's asymptotic hit rate on stationary traffic.
    pub fn expected_hit_rate(&self) -> f64 {
        self.expected_hit_rate
    }

    /// Frequency-ordered page packing of one row range (a shard's slice):
    /// returns range-local rows in *storage order* — the hottest cold
    /// rows first, so the still-accessed head of the cold tail shares
    /// flash pages under a dense layout, and the DRAM-resident hot rows
    /// last (flash copies that serving traffic never touches).
    ///
    /// The result is a permutation of `0..range.len()`: storage slot `s`
    /// holds range-local row `pack[s]`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty or exceeds the table.
    pub fn pack_order(&self, range: Range<u64>) -> Vec<u64> {
        assert!(
            range.start < range.end && range.end <= self.rows,
            "pack range {range:?} out of range for a {}-row table",
            self.rows
        );
        let start = range.start;
        let mut rows: Vec<u64> = range.collect();
        rows.sort_by_key(|&r| (self.is_hot(r), self.heat_rank[r as usize]));
        for r in &mut rows {
            *r -= start;
        }
        rows
    }
}

/// The full multi-table plan: one [`TablePlacement`] per profiled table,
/// in profile order, stamped with a [`PlanVersion`].
#[derive(Debug, Clone)]
pub struct PlacementPlan {
    tables: Vec<TablePlacement>,
    version: PlanVersion,
}

impl PlacementPlan {
    /// Freezes `profiler`'s counts into per-table placements (version 0).
    pub fn build(profiler: &FreqProfiler, policy: &PlacementPolicy) -> Self {
        PlacementPlan::build_versioned(profiler, policy, PlanVersion::default())
    }

    /// [`PlacementPlan::build`] stamped with an explicit version — the
    /// online re-profiling loop passes `previous.version().next()`.
    pub fn build_versioned(
        profiler: &FreqProfiler,
        policy: &PlacementPolicy,
        version: PlanVersion,
    ) -> Self {
        PlacementPlan {
            tables: (0..profiler.tables())
                .map(|t| TablePlacement::build(profiler.heat(t), policy))
                .collect(),
            version,
        }
    }

    /// Builds a plan under one *global* DRAM row budget split across
    /// tables by marginal hit rate (see [`allocate_global_budget`]),
    /// instead of a fixed per-table fraction.
    pub fn build_global(profiler: &FreqProfiler, budget_rows: usize) -> Self {
        PlacementPlan::build_global_versioned(profiler, budget_rows, PlanVersion::default())
    }

    /// [`PlacementPlan::build_global`] with an explicit version.
    pub fn build_global_versioned(
        profiler: &FreqProfiler,
        budget_rows: usize,
        version: PlanVersion,
    ) -> Self {
        let budgets = allocate_global_budget(profiler, budget_rows);
        PlacementPlan {
            tables: budgets
                .into_iter()
                .enumerate()
                .map(|(t, k)| {
                    TablePlacement::build(profiler.heat(t), &PlacementPolicy::hot_rows(k))
                })
                .collect(),
            version,
        }
    }

    /// The plan's version stamp.
    pub fn version(&self) -> PlanVersion {
        self.version
    }

    /// The placement of table `i` (profile order).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn table(&self, i: usize) -> &TablePlacement {
        &self.tables[i]
    }

    /// Number of placed tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` if the plan places no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterates the placements in profile order.
    pub fn iter(&self) -> impl Iterator<Item = &TablePlacement> {
        self.tables.iter()
    }

    /// Total DRAM-resident rows across tables.
    pub fn total_hot_rows(&self) -> usize {
        self.tables.iter().map(|t| t.hot_count()).sum()
    }
}

/// Splits one global DRAM row budget across `profiler`'s tables by
/// *marginal hit rate*: rows are granted in descending access-count order
/// across all tables at once, so each DRAM slot goes wherever it absorbs
/// the most device traffic (the RecNMP observation that hot-entry caching
/// should chase the global head, not a per-table quota). Never-accessed
/// rows are never granted. Ties break toward the lower table index, then
/// the smaller row id, so the split is deterministic.
///
/// Returns the per-table row budgets (in profile order); their sum is at
/// most `budget_rows`.
pub fn allocate_global_budget(profiler: &FreqProfiler, budget_rows: usize) -> Vec<usize> {
    let mut budgets = vec![0usize; profiler.tables()];
    // One ranked row list per table, consumed head-first through a max-heap
    // keyed on the next row's count: a k-way merge of the heat rankings.
    let rankings: Vec<Vec<u64>> = (0..profiler.tables())
        .map(|t| profiler.heat(t).ranking())
        .collect();
    let mut heap: BinaryHeap<(u64, std::cmp::Reverse<usize>, std::cmp::Reverse<u64>, usize)> =
        BinaryHeap::new();
    let push = |heap: &mut BinaryHeap<_>, t: usize, pos: usize| {
        if let Some(&row) = rankings[t].get(pos) {
            let count = profiler.heat(t).count(row);
            if count > 0 {
                heap.push((count, std::cmp::Reverse(t), std::cmp::Reverse(row), pos));
            }
        }
    };
    for t in 0..profiler.tables() {
        push(&mut heap, t, 0);
    }
    for _ in 0..budget_rows {
        let Some((_, std::cmp::Reverse(t), _, pos)) = heap.pop() else {
            break; // every accessed row is already granted
        };
        budgets[t] += 1;
        push(&mut heap, t, pos + 1);
    }
    budgets
}

/// The per-table row movements between two plans of the same tables.
#[derive(Debug, Clone)]
pub struct TableDelta {
    /// Rows newly hot (cold in `old`, hot in `new`), ascending.
    pub promote: Vec<u64>,
    /// Rows newly cold (hot in `old`, cold in `new`), ascending.
    pub demote: Vec<u64>,
}

impl TableDelta {
    /// `true` when the table's hot set did not change.
    pub fn is_empty(&self) -> bool {
        self.promote.is_empty() && self.demote.is_empty()
    }
}

/// The difference between two plan generations: which rows each table
/// must promote into (and demote out of) the DRAM tier to move from
/// `old` to `new`. This is the unit of work a live placement refresh
/// migrates — promotions are device reads of currently-cold rows,
/// demotions are free (the flash copy of every row always exists).
#[derive(Debug, Clone)]
pub struct PlanDelta {
    /// Version migrated from.
    pub from: PlanVersion,
    /// Version migrated to.
    pub to: PlanVersion,
    /// Per-table movements, in profile order.
    pub tables: Vec<TableDelta>,
}

impl PlanDelta {
    /// Total rows promoted across tables.
    pub fn total_promoted(&self) -> usize {
        self.tables.iter().map(|t| t.promote.len()).sum()
    }

    /// Total rows demoted across tables.
    pub fn total_demoted(&self) -> usize {
        self.tables.iter().map(|t| t.demote.len()).sum()
    }

    /// `true` when no table's hot set changed.
    pub fn is_empty(&self) -> bool {
        self.tables.iter().all(TableDelta::is_empty)
    }
}

/// Computes the promote/demote sets taking `old` to `new`.
///
/// # Panics
///
/// Panics if the plans place different table counts or shapes.
pub fn plan_delta(old: &PlacementPlan, new: &PlacementPlan) -> PlanDelta {
    assert_eq!(old.len(), new.len(), "plans place different table counts");
    let tables = old
        .iter()
        .zip(new.iter())
        .map(|(o, n)| {
            assert_eq!(o.rows(), n.rows(), "plans place different table shapes");
            let mut promote: Vec<u64> = n
                .hot_rows()
                .iter()
                .copied()
                .filter(|&r| !o.is_hot(r))
                .collect();
            let mut demote: Vec<u64> = o
                .hot_rows()
                .iter()
                .copied()
                .filter(|&r| !n.is_hot(r))
                .collect();
            promote.sort_unstable();
            demote.sort_unstable();
            TableDelta { promote, demote }
        })
        .collect();
    PlanDelta {
        from: old.version(),
        to: new.version(),
        tables,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiled(rows: u64, stream: impl IntoIterator<Item = u64>) -> FreqProfiler {
        let mut p = FreqProfiler::new();
        let t = p.add_table(rows);
        p.profile_stream(t, stream);
        p
    }

    #[test]
    fn hot_set_is_top_k_accessed_rows() {
        let p = profiled(10, [5, 5, 5, 2, 2, 8]);
        let plan = PlacementPlan::build(&p, &PlacementPolicy::hot_rows(2));
        let t = plan.table(0);
        assert_eq!(t.hot_rows(), &[5, 2]);
        assert!(t.is_hot(5) && t.is_hot(2) && !t.is_hot(8));
        assert!((t.expected_hit_rate() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn budget_never_pins_unaccessed_rows() {
        let p = profiled(100, [1, 1, 3]);
        // 50-row budget, but only two rows were ever touched.
        let plan = PlacementPlan::build(&p, &PlacementPolicy::hot_fraction(0.5));
        let t = plan.table(0);
        assert_eq!(t.hot_count(), 2);
        assert_eq!(t.hot_rows(), &[1, 3]);
        assert!((t.expected_hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_fraction_disables_the_tier() {
        let p = profiled(10, [1, 2, 3]);
        let plan = PlacementPlan::build(&p, &PlacementPolicy::hot_fraction(0.0));
        assert_eq!(plan.table(0).hot_count(), 0);
        assert_eq!(plan.total_hot_rows(), 0);
    }

    #[test]
    fn pack_order_is_a_cold_first_heat_ordered_permutation() {
        // Heat: row 4 (3x), row 1 (2x), row 6 (1x); hot budget 1 pins 4.
        let p = profiled(8, [4, 4, 4, 1, 1, 6]);
        let plan = PlacementPlan::build(&p, &PlacementPolicy::hot_rows(1));
        let t = plan.table(0);
        let pack = t.pack_order(0..8);
        let mut sorted = pack.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "must be a permutation");
        // Cold rows by heat (1, 6, then untouched 0,2,3,5,7 by id), hot 4 last.
        assert_eq!(pack, vec![1, 6, 0, 2, 3, 5, 7, 4]);

        // A sub-range is local to its start.
        let pack = t.pack_order(4..8);
        assert_eq!(pack, vec![2, 1, 3, 0]); // local: 6→2 first, then 5,7 cold, 4→0 last
    }

    #[test]
    fn fraction_budget_rounds_on_table_size() {
        let pol = PlacementPolicy::hot_fraction(0.1);
        assert_eq!(pol.budget_for(4096), 410);
        assert_eq!(pol.budget_for(5), 1); // 0.5 rounds up
        assert_eq!(PlacementPolicy::hot_rows(7).budget_for(5), 5);
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn fraction_above_one_rejected() {
        PlacementPolicy::hot_fraction(1.5);
    }

    #[test]
    fn global_budget_chases_marginal_hit_rate_across_tables() {
        // Table 0 is mildly hot, table 1 has a scorching head: a global
        // budget of 3 must grant table 1's two hottest rows plus the
        // single hottest row overall from table 0.
        let mut p = FreqProfiler::new();
        let a = p.add_table(10);
        let b = p.add_table(10);
        p.profile_stream(a, [1, 1, 1, 2, 2, 3]); // counts: 3, 2, 1
        p.profile_stream(
            b,
            std::iter::repeat_n(5, 10).chain(std::iter::repeat_n(6, 4)),
        ); // 10, 4
        let budgets = allocate_global_budget(&p, 3);
        assert_eq!(budgets, vec![1, 2]); // rows 5 (10), 6 (4), 1 (3)
        let plan = PlacementPlan::build_global(&p, 3);
        assert_eq!(plan.table(a).hot_rows(), &[1]);
        assert_eq!(plan.table(b).hot_rows(), &[5, 6]);
        // The greedy split maximises absorbed mass for 3 slots.
        let absorbed: f64 = 17.0 / 20.0;
        let total_mass = plan.table(a).expected_hit_rate() * 6.0 / 20.0
            + plan.table(b).expected_hit_rate() * 14.0 / 20.0;
        assert!((total_mass - absorbed).abs() < 1e-12);
    }

    #[test]
    fn global_budget_never_grants_unaccessed_rows() {
        let mut p = FreqProfiler::new();
        let a = p.add_table(100);
        let _b = p.add_table(100);
        p.profile_stream(a, [7, 7, 9]);
        let budgets = allocate_global_budget(&p, 50);
        assert_eq!(budgets, vec![2, 0], "only the two accessed rows granted");
    }

    #[test]
    fn plan_delta_yields_promotes_and_demotes() {
        let mut p1 = FreqProfiler::new();
        let t = p1.add_table(10);
        p1.profile_stream(t, [1, 1, 2, 2, 3]);
        let old = PlacementPlan::build(&p1, &PlacementPolicy::hot_rows(2));
        assert_eq!(old.table(0).hot_rows(), &[1, 2]);

        let mut p2 = FreqProfiler::new();
        let t = p2.add_table(10);
        p2.profile_stream(t, [5, 5, 2, 2, 2]);
        let new =
            PlacementPlan::build_versioned(&p2, &PlacementPolicy::hot_rows(2), PlanVersion(1));
        assert_eq!(new.table(0).hot_rows(), &[2, 5]);

        let delta = plan_delta(&old, &new);
        assert_eq!(delta.from, PlanVersion(0));
        assert_eq!(delta.to, PlanVersion(1));
        assert_eq!(delta.tables[0].promote, vec![5]);
        assert_eq!(delta.tables[0].demote, vec![1]);
        assert_eq!(delta.total_promoted(), 1);
        assert_eq!(delta.total_demoted(), 1);
        assert!(!delta.is_empty());
        assert!(plan_delta(&old, &old).is_empty());
    }

    #[test]
    fn versions_are_monotone() {
        assert_eq!(PlanVersion::default().next(), PlanVersion(1));
        assert!(PlanVersion(2) > PlanVersion(1));
    }

    #[test]
    #[should_panic(expected = "out of range for a")]
    fn pack_range_out_of_bounds_panics() {
        let p = profiled(4, [0]);
        PlacementPlan::build(&p, &PlacementPolicy::hot_rows(1))
            .table(0)
            .pack_order(0..5);
    }
}
