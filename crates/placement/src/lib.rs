//! **recssd-placement**: frequency-profiled hot/cold placement of
//! embedding rows across a hybrid DRAM + NDP-SSD hierarchy.
//!
//! RecSSD's headline wins ride on the extreme popularity skew of
//! embedding accesses (§3.1 of the paper: power-law row popularity).
//! Two placement levers follow, and this crate computes both from one
//! profiling pass:
//!
//! * **Hot tier** — the top-k most frequently accessed rows of each
//!   table are pinned in host DRAM (the §4.2 static-partitioning idea,
//!   generalised from a per-operator split to a serving-tier plan built
//!   on [`recssd_cache::StaticPartition`]). A skewed trace concentrates
//!   most lookups on a small hot set, so a tiny DRAM budget absorbs a
//!   large traffic fraction.
//! * **Cold-tail page packing** — the remaining rows are laid out on
//!   flash in *descending heat order*, so the co-hot part of the cold
//!   tail shares flash pages (RecFlash's frequency-based data mapping).
//!   Under a dense layout this concentrates residual page traffic on few
//!   pages and raises the FTL page-cache hit rate.
//!
//! The pipeline: feed access streams (e.g. [`recssd_trace::ZipfTrace`])
//! into a [`FreqProfiler`], build a [`PlacementPlan`] under a
//! [`PlacementPolicy`], and hand each [`TablePlacement`] to the serving
//! layer (`ServingRuntime::add_table_placed` in `recssd-serving`), which
//! routes hot lookups to its DRAM tier and cold lookups to packed
//! per-shard device images.
//!
//! Plans are also built *online*: the profiler doubles as a decayed
//! (EWMA) accumulator over live request streams
//! ([`FreqProfiler::decay`] / [`FreqProfiler::merge`]), plans carry a
//! [`PlanVersion`], [`plan_delta`] yields the promote/demote row sets
//! separating two plan generations (the migration work a live refresh
//! must move), and [`allocate_global_budget`] splits one global DRAM row
//! budget across tables by marginal hit rate instead of a fixed
//! per-table fraction. The serving runtime's adaptive loop builds on the
//! profiler and the budget allocator; it tracks its own per-table
//! promote/demote sets because it refreshes one [`TablePlacement`] at a
//! time, while [`plan_delta`] diffs whole multi-table plans (e.g.
//! consecutive profiling generations in the drift benchmarks).
//!
//! # Example
//!
//! ```
//! use recssd_placement::{FreqProfiler, PlacementPlan, PlacementPolicy};
//! use recssd_trace::ZipfTrace;
//!
//! let mut prof = FreqProfiler::new();
//! let t = prof.add_table(4096);
//! let mut zipf = ZipfTrace::new(4096, 1.2, 7);
//! prof.profile_stream(t, (0..100_000).map(|_| zipf.next_id()));
//!
//! let plan = PlacementPlan::build(&prof, &PlacementPolicy::hot_fraction(0.1));
//! let p = plan.table(t);
//! assert_eq!(p.hot_count(), 410); // 10% of 4096 rows pinned hot
//! // The hot set absorbs far more than 10% of a skewed stream.
//! assert!(p.expected_hit_rate() > 0.3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod plan;
mod profile;

pub use plan::{
    allocate_global_budget, plan_delta, PlacementPlan, PlacementPolicy, PlanDelta, PlanVersion,
    TableDelta, TablePlacement,
};
pub use profile::{FreqProfiler, TableHeat};
