//! Access-frequency profiling: traces in, per-table row-heat rankings out.

use recssd_trace::ZipfTrace;

/// Accumulates per-row access counts for a set of tables.
///
/// The profiler has two modes of life. *Offline*: run representative
/// traffic through it once (the paper profiles "input data" ahead of
/// time, §4.2), then freeze the counts into a [`crate::PlacementPlan`].
/// *Online*: keep feeding it the live request stream and call
/// [`FreqProfiler::decay`] at every epoch boundary — counts become an
/// exponentially weighted moving average over epochs, so the rankings
/// track drifting skew instead of averaging it away. Counts are dense per
/// table — row id indexes directly — so observation is O(1) and ranking
/// is one sort at plan-build time.
#[derive(Debug, Default, Clone)]
pub struct FreqProfiler {
    tables: Vec<TableHeat>,
}

impl FreqProfiler {
    /// Creates a profiler with no tables.
    pub fn new() -> Self {
        FreqProfiler::default()
    }

    /// Registers a table of `rows` rows, returning its profile index
    /// (assign in the same order tables are registered with the serving
    /// runtime so indices line up).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero.
    pub fn add_table(&mut self, rows: u64) -> usize {
        assert!(rows > 0, "table must have rows");
        self.tables.push(TableHeat {
            counts: vec![0; rows as usize],
            total: 0,
        });
        self.tables.len() - 1
    }

    /// Number of registered tables.
    pub fn tables(&self) -> usize {
        self.tables.len()
    }

    /// Records one access to `row` of `table`.
    ///
    /// # Panics
    ///
    /// Panics if `table` or `row` is out of range.
    #[inline]
    pub fn observe(&mut self, table: usize, row: u64) {
        let t = &mut self.tables[table];
        t.counts[row as usize] += 1;
        t.total += 1;
    }

    /// Records `n` accesses to `row` at once.
    ///
    /// # Panics
    ///
    /// Panics if `table` or `row` is out of range.
    #[inline]
    pub fn observe_count(&mut self, table: usize, row: u64, n: u64) {
        let t = &mut self.tables[table];
        t.counts[row as usize] += n;
        t.total += n;
    }

    /// Records every access produced by `rows`.
    pub fn profile_stream<I: IntoIterator<Item = u64>>(&mut self, table: usize, rows: I) {
        for row in rows {
            self.observe(table, row);
        }
    }

    /// Adds every count of `other` into this profiler (same table
    /// shapes) — the EWMA epoch-merge step: `ewma.decay(λ)` then
    /// `ewma.merge(&fresh)` makes the long-memory ranking absorb the
    /// epoch's observations.
    ///
    /// # Panics
    ///
    /// Panics if the profilers cover different tables.
    pub fn merge(&mut self, other: &FreqProfiler) {
        assert_eq!(
            self.tables.len(),
            other.tables.len(),
            "profilers cover different table counts"
        );
        for (a, b) in self.tables.iter_mut().zip(&other.tables) {
            assert_eq!(a.counts.len(), b.counts.len(), "table shapes differ");
            for (x, y) in a.counts.iter_mut().zip(&b.counts) {
                *x += *y;
            }
            a.total += b.total;
        }
    }

    /// Ends an observation epoch: scales every count by `factor`
    /// (truncating), so the profiler becomes an EWMA over epochs — heat
    /// observed `k` epochs ago weighs `factor^k` of fresh heat, and rows
    /// that stop being accessed fade to zero instead of pinning DRAM on
    /// stale popularity. `factor = 0` forgets everything (pure
    /// sliding-epoch counters); `factor = 1` is the offline accumulate.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= factor <= 1`.
    pub fn decay(&mut self, factor: f64) {
        assert!(
            (0.0..=1.0).contains(&factor),
            "decay factor must lie in [0, 1]"
        );
        for t in 0..self.tables.len() {
            self.decay_table(t, factor);
        }
    }

    /// [`FreqProfiler::decay`] restricted to one table — a change-point
    /// flush in a drifting table must not erase the well-sampled history
    /// of tables whose traffic did not move.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range or `factor` is outside [0, 1].
    pub fn decay_table(&mut self, table: usize, factor: f64) {
        assert!(
            (0.0..=1.0).contains(&factor),
            "decay factor must lie in [0, 1]"
        );
        let t = &mut self.tables[table];
        let mut total = 0;
        for c in &mut t.counts {
            *c = (*c as f64 * factor) as u64;
            total += *c;
        }
        t.total = total;
    }

    /// Draws `samples` ids from `trace` into `table`'s profile — the
    /// synthetic stand-in for profiling production traffic.
    ///
    /// # Panics
    ///
    /// Panics if the trace produces ids outside the table.
    pub fn profile_zipf(&mut self, table: usize, trace: &mut ZipfTrace, samples: usize) {
        for _ in 0..samples {
            let id = trace.next_id();
            self.observe(table, id);
        }
    }

    /// The accumulated heat of `table`.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range.
    pub fn heat(&self, table: usize) -> &TableHeat {
        &self.tables[table]
    }
}

/// Per-row access counts of one table, with ranking helpers.
#[derive(Debug, Clone)]
pub struct TableHeat {
    counts: Vec<u64>,
    total: u64,
}

impl TableHeat {
    /// Number of rows profiled.
    pub fn rows(&self) -> u64 {
        self.counts.len() as u64
    }

    /// Accesses recorded against `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn count(&self, row: u64) -> u64 {
        self.counts[row as usize]
    }

    /// Total accesses recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Rows with at least one recorded access.
    pub fn accessed_rows(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// All rows ordered by descending access count; ties break toward the
    /// smaller row id so rankings are deterministic.
    pub fn ranking(&self) -> Vec<u64> {
        let mut rows: Vec<u64> = (0..self.rows()).collect();
        self.rank_in_place(&mut rows);
        rows
    }

    /// Orders `rows` (arbitrary subset, e.g. one shard's range) by
    /// descending heat in place, ties toward smaller row ids.
    pub fn rank_in_place(&self, rows: &mut [u64]) {
        rows.sort_by(|&a, &b| {
            self.counts[b as usize]
                .cmp(&self.counts[a as usize])
                .then(a.cmp(&b))
        });
    }

    /// Fraction of recorded accesses that hit the `k` hottest rows — the
    /// best possible hit rate of a `k`-entry static DRAM tier on traffic
    /// distributed like the profile.
    pub fn mass_of_top(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut counts = self.counts.clone();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let hot: u64 = counts.iter().take(k).sum();
        hot as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiling_counts_accesses_per_row() {
        let mut p = FreqProfiler::new();
        let t = p.add_table(10);
        p.profile_stream(t, [3, 3, 3, 7, 7, 1]);
        let h = p.heat(t);
        assert_eq!(h.count(3), 3);
        assert_eq!(h.count(7), 2);
        assert_eq!(h.count(0), 0);
        assert_eq!(h.total(), 6);
        assert_eq!(h.accessed_rows(), 3);
    }

    #[test]
    fn ranking_is_heat_descending_with_deterministic_ties() {
        let mut p = FreqProfiler::new();
        let t = p.add_table(5);
        p.profile_stream(t, [4, 4, 2, 2, 0]);
        let r = p.heat(t).ranking();
        // 2 and 4 tie at count 2 → smaller id first; 1 and 3 tie at 0.
        assert_eq!(r, vec![2, 4, 0, 1, 3]);
    }

    #[test]
    fn mass_of_top_reflects_concentration() {
        let mut p = FreqProfiler::new();
        let t = p.add_table(100);
        p.profile_stream(t, (0..90).map(|_| 5).chain(0..10));
        let h = p.heat(t);
        assert!((h.mass_of_top(1) - 0.91).abs() < 1e-12); // row 5: 90+1 of 100
        assert_eq!(h.mass_of_top(0), 0.0);
        assert_eq!(h.mass_of_top(100), 1.0);
    }

    #[test]
    fn zipf_profiling_concentrates_mass() {
        let mut p = FreqProfiler::new();
        let t = p.add_table(10_000);
        let mut z = ZipfTrace::new(10_000, 1.3, 11);
        p.profile_zipf(t, &mut z, 50_000);
        let h = p.heat(t);
        assert_eq!(h.total(), 50_000);
        // 1% of rows must hold far more than 1% of a Zipf(1.3) stream.
        assert!(h.mass_of_top(100) > 0.3, "{}", h.mass_of_top(100));
    }

    #[test]
    #[should_panic(expected = "table must have rows")]
    fn zero_row_table_rejected() {
        FreqProfiler::new().add_table(0);
    }

    #[test]
    fn decay_fades_old_heat_under_fresh_traffic() {
        let mut p = FreqProfiler::new();
        let t = p.add_table(10);
        // Epoch 1: row 3 dominates.
        p.profile_stream(t, std::iter::repeat_n(3, 8));
        p.decay(0.5);
        assert_eq!(p.heat(t).count(3), 4);
        assert_eq!(p.heat(t).total(), 4);
        // Epochs 2-3: traffic moves to row 7; the ranking must follow.
        for _ in 0..2 {
            p.profile_stream(t, std::iter::repeat_n(7, 8));
            p.decay(0.5);
        }
        let h = p.heat(t);
        assert!(h.count(7) > h.count(3), "EWMA must track the drift");
        assert_eq!(h.ranking()[0], 7);
    }

    #[test]
    fn full_decay_forgets_everything() {
        let mut p = FreqProfiler::new();
        let t = p.add_table(4);
        p.profile_stream(t, [0, 1, 2, 3]);
        p.decay(0.0);
        assert_eq!(p.heat(t).total(), 0);
        assert_eq!(p.heat(t).accessed_rows(), 0);
    }

    #[test]
    fn observe_count_matches_repeated_observe() {
        let mut a = FreqProfiler::new();
        let mut b = FreqProfiler::new();
        let (ta, tb) = (a.add_table(8), b.add_table(8));
        for _ in 0..5 {
            a.observe(ta, 2);
        }
        b.observe_count(tb, 2, 5);
        assert_eq!(a.heat(ta).count(2), b.heat(tb).count(2));
        assert_eq!(a.heat(ta).total(), b.heat(tb).total());
    }

    #[test]
    #[should_panic(expected = "decay factor")]
    fn decay_above_one_rejected() {
        FreqProfiler::new().decay(1.5);
    }
}
