//! End-to-end behaviour of the RecSSD core: every accelerated SLS path
//! must reproduce the DRAM reference bit-exactly, and the latency
//! orderings of the paper's headline results must hold.

use proptest::prelude::*;
use recssd::{LookupBatch, OpKind, RecSsdConfig, SlsOptions, System};
use recssd_cache::StaticPartitionBuilder;
use recssd_embedding::{EmbeddingTable, PageLayout, Quantization, TableImage, TableSpec};
use recssd_sim::rng::Xoshiro256;

const PAGE: usize = 16 * 1024;

fn small_system() -> System {
    System::new(RecSsdConfig::small())
}

fn spread_table(
    sys: &mut System,
    rows: u64,
    dim: usize,
    quant: Quantization,
    seed: u64,
) -> recssd::TableId {
    let spec = TableSpec::new(rows, dim, quant);
    sys.add_table(TableImage::new(
        EmbeddingTable::procedural(spec, seed),
        PageLayout::Spread,
        PAGE,
    ))
}

fn dense_table(
    sys: &mut System,
    rows: u64,
    dim: usize,
    quant: Quantization,
    seed: u64,
) -> recssd::TableId {
    let spec = TableSpec::new(rows, dim, quant);
    sys.add_table(TableImage::new(
        EmbeddingTable::procedural(spec, seed),
        PageLayout::Dense,
        PAGE,
    ))
}

fn random_batch(rng: &mut Xoshiro256, rows: u64, outputs: usize, lookups: usize) -> LookupBatch {
    LookupBatch::new(
        (0..outputs)
            .map(|_| (0..lookups).map(|_| rng.gen_range(0..rows)).collect())
            .collect(),
    )
}

#[test]
fn ndp_matches_dram_reference_spread_layout() {
    let mut sys = small_system();
    let table = spread_table(&mut sys, 800, 32, Quantization::F32, 1);
    let mut rng = Xoshiro256::seed_from(2);
    let batch = random_batch(&mut rng, 800, 8, 20);
    let ndp = sys.submit(OpKind::ndp_sls(table, batch.clone(), SlsOptions::default()));
    let dram = sys.submit(OpKind::dram_sls(table, batch));
    sys.run_until_idle();
    assert_eq!(sys.result(ndp).outputs, sys.result(dram).outputs);
}

#[test]
fn ndp_matches_dram_reference_dense_layout_all_quants() {
    for quant in [Quantization::F32, Quantization::F16, Quantization::Int8] {
        let mut sys = small_system();
        let table = dense_table(&mut sys, 5_000, 16, quant, 7);
        let mut rng = Xoshiro256::seed_from(3);
        let batch = random_batch(&mut rng, 5_000, 4, 30);
        let ndp = sys.submit(OpKind::ndp_sls(table, batch.clone(), SlsOptions::default()));
        let dram = sys.submit(OpKind::dram_sls(table, batch));
        sys.run_until_idle();
        assert_eq!(
            sys.result(ndp).outputs,
            sys.result(dram).outputs,
            "quant {quant:?}"
        );
    }
}

#[test]
fn baseline_matches_dram_reference() {
    let mut sys = small_system();
    let table = dense_table(&mut sys, 3_000, 32, Quantization::F32, 9);
    let mut rng = Xoshiro256::seed_from(4);
    let batch = random_batch(&mut rng, 3_000, 6, 25);
    let base = sys.submit(OpKind::baseline_sls(
        table,
        batch.clone(),
        SlsOptions::default(),
    ));
    let dram = sys.submit(OpKind::dram_sls(table, batch));
    sys.run_until_idle();
    assert_eq!(sys.result(base).outputs, sys.result(dram).outputs);
}

#[test]
fn baseline_with_host_cache_matches_and_hits() {
    let mut sys = small_system();
    let table = spread_table(&mut sys, 500, 16, Quantization::F32, 5);
    sys.enable_host_cache(table, 256);
    let opts = SlsOptions {
        use_host_cache: true,
        ..SlsOptions::default()
    };
    let mut rng = Xoshiro256::seed_from(6);
    // Two identical batches: the second should hit the host cache.
    let batch = random_batch(&mut rng, 500, 4, 16);
    let a = sys.submit(OpKind::baseline_sls(table, batch.clone(), opts));
    sys.run_until_idle();
    let b = sys.submit(OpKind::baseline_sls(table, batch.clone(), opts));
    let dram = sys.submit(OpKind::dram_sls(table, batch));
    sys.run_until_idle();
    assert_eq!(sys.result(b).outputs, sys.result(dram).outputs);
    let stats = sys.host_cache_stats(table).expect("cache enabled");
    assert!(stats.hits() >= 60, "second batch should hit: {stats:?}");
    // Cached repeat run is much faster than the cold run.
    assert!(sys.result(b).service_time() < sys.result(a).service_time() / 4);
}

#[test]
fn ndp_with_static_partition_matches_reference() {
    let mut sys = small_system();
    let table = spread_table(&mut sys, 600, 32, Quantization::F32, 8);
    let mut rng = Xoshiro256::seed_from(7);
    // Profile a skewed trace and pin the hot quarter in host DRAM.
    let mut builder = StaticPartitionBuilder::new();
    let draw = |rng: &mut Xoshiro256| -> u64 {
        if rng.gen_bool(0.7) {
            rng.gen_range(0..64)
        } else {
            rng.gen_range(0..600)
        }
    };
    for _ in 0..10_000 {
        builder.observe(draw(&mut rng));
    }
    sys.set_partition(table, builder.build(64));
    let opts = SlsOptions {
        use_partition: true,
        ..SlsOptions::default()
    };
    let batch = LookupBatch::new(
        (0..6)
            .map(|_| (0..20).map(|_| draw(&mut rng)).collect())
            .collect(),
    );
    let ndp = sys.submit(OpKind::ndp_sls(table, batch.clone(), opts));
    let plain = sys.submit(OpKind::ndp_sls(table, batch.clone(), SlsOptions::default()));
    let dram = sys.submit(OpKind::dram_sls(table, batch));
    sys.run_until_idle();
    assert_eq!(sys.result(ndp).outputs, sys.result(dram).outputs);
    assert_eq!(sys.result(plain).outputs, sys.result(dram).outputs);
}

#[test]
fn all_hot_partition_skips_device_entirely() {
    let mut sys = small_system();
    let table = spread_table(&mut sys, 100, 8, Quantization::F32, 2);
    let mut builder = StaticPartitionBuilder::new();
    for id in 0..100 {
        builder.observe(id);
    }
    sys.set_partition(table, builder.build(100));
    let opts = SlsOptions {
        use_partition: true,
        ..SlsOptions::default()
    };
    let batch = LookupBatch::new(vec![vec![1, 2, 3], vec![4, 5, 6]]);
    let ndp = sys.submit(OpKind::ndp_sls(table, batch.clone(), opts));
    let dram = sys.submit(OpKind::dram_sls(table, batch));
    sys.run_until_idle();
    assert_eq!(sys.result(ndp).outputs, sys.result(dram).outputs);
    assert_eq!(
        sys.device().stats().ndp_commands.get(),
        0,
        "no device commands when everything is hot"
    );
}

#[test]
fn ssd_embed_cache_matches_and_hits_on_repeats() {
    let mut cfg = RecSsdConfig::small();
    cfg.ndp = cfg.ndp.with_embed_cache(4096);
    let mut sys = System::new(cfg);
    let table = spread_table(&mut sys, 700, 16, Quantization::F32, 3);
    let mut rng = Xoshiro256::seed_from(9);
    let batch = random_batch(&mut rng, 700, 4, 25);
    let a = sys.submit(OpKind::ndp_sls(table, batch.clone(), SlsOptions::default()));
    sys.run_until_idle();
    let b = sys.submit(OpKind::ndp_sls(table, batch.clone(), SlsOptions::default()));
    let dram = sys.submit(OpKind::dram_sls(table, batch));
    sys.run_until_idle();
    assert_eq!(sys.result(a).outputs, sys.result(dram).outputs);
    assert_eq!(sys.result(b).outputs, sys.result(dram).outputs);
    let stats = sys.device().engine().stats();
    assert!(
        stats.embed_cache.hits() >= 90,
        "repeat batch should hit the SSD embedding cache: {:?}",
        stats.embed_cache
    );
    // The cached request avoided flash pages.
    assert!(stats.sls_requests.get() > 0, "reports recorded");
    let last = stats.last_report();
    assert!(
        last.pages < 25 * 4,
        "cache hits must reduce pages: {last:?}"
    );
}

#[test]
fn ndp_beats_baseline_on_low_locality_spread_access() {
    // The headline result: with one vector per page and low-locality ids,
    // NDP wins by roughly the paper's margin (up to ~4x on the operator).
    // Needs the full 8-channel internal parallelism to show.
    let mut sys = System::new(RecSsdConfig::small_wide());
    let table = spread_table(&mut sys, 1000, 32, Quantization::F32, 4);
    let mut rng = Xoshiro256::seed_from(11);
    let batch = random_batch(&mut rng, 1000, 8, 20); // 160 distinct-ish pages
    let base = sys.submit(OpKind::baseline_sls(
        table,
        batch.clone(),
        SlsOptions::default(),
    ));
    sys.run_until_idle();
    sys.device_mut().ftl_mut().drop_caches();
    let ndp = sys.submit(OpKind::ndp_sls(table, batch, SlsOptions::default()));
    sys.run_until_idle();
    let t_base = sys.result(base).service_time();
    let t_ndp = sys.result(ndp).service_time();
    let speedup = t_base.as_ns() as f64 / t_ndp.as_ns() as f64;
    assert!(
        speedup > 2.0,
        "NDP should clearly win on sparse access: {speedup:.2}x (base {t_base}, ndp {t_ndp})"
    );
}

#[test]
fn baseline_wins_on_sequential_dense_access() {
    // Fig. 8's SEQ result: with high page locality the baseline streams
    // few pages and the host CPU aggregates faster than the ARM core.
    let mut sys = small_system();
    let table = dense_table(&mut sys, 50_000, 32, Quantization::F32, 5);
    let ids: Vec<u64> = (0..512).collect(); // 4 dense pages in total
    let batch = LookupBatch::new(vec![ids]);
    let base = sys.submit(OpKind::baseline_sls(
        table,
        batch.clone(),
        SlsOptions::default(),
    ));
    sys.run_until_idle();
    sys.device_mut().ftl_mut().drop_caches();
    let ndp = sys.submit(OpKind::ndp_sls(table, batch, SlsOptions::default()));
    sys.run_until_idle();
    let t_base = sys.result(base).service_time();
    let t_ndp = sys.result(ndp).service_time();
    assert!(
        t_ndp >= t_base,
        "sequential access should not favour NDP: base {t_base}, ndp {t_ndp}"
    );
}

#[test]
fn breakdown_reports_are_consistent() {
    let mut sys = small_system();
    let table = spread_table(&mut sys, 900, 32, Quantization::F32, 6);
    let mut rng = Xoshiro256::seed_from(13);
    let batch = random_batch(&mut rng, 900, 8, 15);
    let op = sys.submit(OpKind::ndp_sls(table, batch, SlsOptions::default()));
    sys.run_until_idle();
    let _ = sys.result(op);
    let stats = sys.device().engine().stats();
    assert_eq!(stats.sls_requests.get(), 1);
    let r = stats.last_report();
    assert!(r.pages > 0 && r.pages <= 120);
    assert_eq!(r.lookups, 8 * 15);
    assert!(r.translation > recssd_sim::SimDuration::ZERO);
    assert!(r.config_write > recssd_sim::SimDuration::ZERO);
    assert!(r.total >= r.translation);
    assert!(
        r.total >= r.config_write + r.config_process,
        "total spans all phases"
    );
}

#[test]
fn dependent_ops_execute_in_order() {
    let mut sys = small_system();
    let table = spread_table(&mut sys, 300, 8, Quantization::F32, 7);
    let batch = LookupBatch::new(vec![vec![1, 2, 3]]);
    let sls = sys.submit(OpKind::ndp_sls(table, batch, SlsOptions::default()));
    let mlp = sys.submit_after(OpKind::host_compute(1e6, 1e5), &[sls]);
    sys.run_until_idle();
    assert!(
        sys.result(mlp).started >= sys.result(sls).finished,
        "dependent op must wait for its dependency"
    );
    assert!(sys.result(mlp).outputs.is_none());
}

#[test]
fn worker_pool_serialises_excess_ops() {
    let mut cfg = RecSsdConfig::small();
    cfg.host.sls_workers = 1;
    let mut sys = System::new(cfg);
    let table = spread_table(&mut sys, 400, 16, Quantization::F32, 8);
    let batch = LookupBatch::new(vec![vec![5, 10, 15, 20]]);
    let a = sys.submit(OpKind::ndp_sls(table, batch.clone(), SlsOptions::default()));
    let b = sys.submit(OpKind::ndp_sls(table, batch, SlsOptions::default()));
    sys.run_until_idle();
    assert!(
        sys.result(b).started >= sys.result(a).finished,
        "one worker means strictly serial SLS ops"
    );
}

#[test]
fn identical_runs_are_deterministic() {
    let run = || {
        let mut sys = small_system();
        let table = spread_table(&mut sys, 500, 32, Quantization::F32, 9);
        let mut rng = Xoshiro256::seed_from(21);
        let batch = random_batch(&mut rng, 500, 8, 12);
        let ndp = sys.submit(OpKind::ndp_sls(table, batch.clone(), SlsOptions::default()));
        let base = sys.submit(OpKind::baseline_sls(table, batch, SlsOptions::default()));
        sys.run_until_idle();
        (
            sys.result(ndp).finished,
            sys.result(base).finished,
            sys.result(ndp).outputs.clone(),
        )
    };
    let (a1, a2, a3) = run();
    let (b1, b2, b3) = run();
    assert_eq!((a1, a2), (b1, b2));
    assert_eq!(a3, b3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For arbitrary batches and layouts, all three paths agree exactly.
    #[test]
    fn all_paths_agree(
        seed in 0u64..1000,
        outputs in 1usize..6,
        lookups in 1usize..24,
        dense in proptest::bool::ANY,
    ) {
        let mut sys = small_system();
        let rows = 900u64;
        let table = if dense {
            dense_table(&mut sys, rows, 16, Quantization::F32, seed)
        } else {
            spread_table(&mut sys, rows, 16, Quantization::F32, seed)
        };
        let mut rng = Xoshiro256::seed_from(seed ^ 0xABCD);
        let batch = random_batch(&mut rng, rows, outputs, lookups);
        let ndp = sys.submit(OpKind::ndp_sls(table, batch.clone(), SlsOptions::default()));
        let base = sys.submit(OpKind::baseline_sls(table, batch.clone(), SlsOptions::default()));
        let dram = sys.submit(OpKind::dram_sls(table, batch));
        sys.run_until_idle();
        prop_assert_eq!(sys.result(ndp).outputs.as_ref(), sys.result(dram).outputs.as_ref());
        prop_assert_eq!(sys.result(base).outputs.as_ref(), sys.result(dram).outputs.as_ref());
    }
}
