//! The flat `SlsOutput` results coming out of `System` must equal the
//! golden `sls_reference` for every execution path — DRAM, baseline SSD
//! and NDP — across layouts and quantizations.

use proptest::prelude::*;
use recssd::{LookupBatch, OpKind, RecSsdConfig, SlsOptions, SlsOutput, System};
use recssd_embedding::{
    sls_reference, EmbeddingTable, PageLayout, Quantization, TableImage, TableSpec,
};
use recssd_sim::rng::Xoshiro256;

const PAGE: usize = 16 * 1024;

fn system_with_table(
    rows: u64,
    dim: usize,
    quant: Quantization,
    layout: PageLayout,
    seed: u64,
) -> (System, recssd::TableId, EmbeddingTable) {
    let mut sys = System::new(RecSsdConfig::small());
    let spec = TableSpec::new(rows, dim, quant);
    let table = EmbeddingTable::procedural(spec, seed);
    let id = sys.add_table(TableImage::new(table.clone(), layout, PAGE));
    (sys, id, table)
}

fn random_batch(rng: &mut Xoshiro256, rows: u64, outputs: usize, lookups: usize) -> LookupBatch {
    LookupBatch::new(
        (0..outputs)
            .map(|_| (0..lookups).map(|_| rng.gen_range(0..rows)).collect())
            .collect(),
    )
}

/// Row-by-row, bit-for-bit comparison of a flat output against the
/// nested reference.
fn assert_matches_reference(out: &SlsOutput, reference: &[Vec<f32>], what: &str) {
    assert_eq!(out.len(), reference.len(), "{what}: row count");
    for (i, want) in reference.iter().enumerate() {
        assert_eq!(out.row(i), &want[..], "{what}: row {i}");
    }
    // And the nested copy-out agrees wholesale.
    assert_eq!(&out.to_nested(), reference, "{what}: nested view");
}

#[test]
fn all_three_paths_equal_reference_all_quants() {
    for quant in [Quantization::F32, Quantization::F16, Quantization::Int8] {
        for layout in [PageLayout::Spread, PageLayout::Dense] {
            let (mut sys, id, table) = system_with_table(700, 24, quant, layout, 11);
            let mut rng = Xoshiro256::seed_from(5);
            let batch = random_batch(&mut rng, 700, 5, 18);
            let reference = sls_reference(&table, &batch);

            let dram = sys.submit(OpKind::dram_sls(id, batch.clone()));
            let base = sys.submit(OpKind::baseline_sls(
                id,
                batch.clone(),
                SlsOptions::default(),
            ));
            let ndp = sys.submit(OpKind::ndp_sls(id, batch, SlsOptions::default()));
            sys.run_until_idle();

            let what = format!("{quant:?}/{layout:?}");
            let out = |op| sys.result(op).outputs.as_ref().expect("SLS output");
            assert_matches_reference(out(dram), &reference, &format!("dram {what}"));
            assert_matches_reference(out(base), &reference, &format!("baseline {what}"));
            assert_matches_reference(out(ndp), &reference, &format!("ndp {what}"));
        }
    }
}

#[test]
fn recycled_buffers_never_leak_between_requests() {
    // Run differently-shaped batches back to back through the same
    // system, draining and recycling each result: pooled buffer reuse
    // must never let one request's data bleed into the next.
    let (mut sys, id, table) = system_with_table(400, 16, Quantization::F32, PageLayout::Spread, 3);
    let mut rng = Xoshiro256::seed_from(9);
    for round in 0..6 {
        let outputs = 1 + (round % 4);
        let lookups = 3 + round * 5;
        let batch = random_batch(&mut rng, 400, outputs, lookups);
        let reference = sls_reference(&table, &batch);
        let op = sys.submit(OpKind::ndp_sls(id, batch, SlsOptions::default()));
        sys.run_until_idle();
        let result = sys.take_result(op);
        let out = result.outputs.expect("SLS output");
        assert_matches_reference(&out, &reference, &format!("round {round}"));
        sys.recycle_outputs(out);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary batch shapes: flat results equal the reference on every
    /// path.
    #[test]
    fn flat_results_equal_reference(
        seed in 0u64..500,
        outputs in 1usize..5,
        lookups in 1usize..20,
    ) {
        let (mut sys, id, table) =
            system_with_table(300, 8, Quantization::F32, PageLayout::Spread, seed);
        let mut rng = Xoshiro256::seed_from(seed ^ 0x5A5A);
        let batch = random_batch(&mut rng, 300, outputs, lookups);
        let reference = sls_reference(&table, &batch);
        let dram = sys.submit(OpKind::dram_sls(id, batch.clone()));
        let base = sys.submit(OpKind::baseline_sls(id, batch.clone(), SlsOptions::default()));
        let ndp = sys.submit(OpKind::ndp_sls(id, batch, SlsOptions::default()));
        sys.run_until_idle();
        for (op, what) in [(dram, "dram"), (base, "baseline"), (ndp, "ndp")] {
            let out = sys.result(op).outputs.as_ref().expect("SLS output");
            prop_assert_eq!(&out.to_nested(), &reference, "{}", what);
        }
    }
}
