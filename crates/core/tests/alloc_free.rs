//! The datapath's headline discipline, measured: steady-state SLS
//! request processing performs **zero heap allocations per gathered
//! vector**. A counting global allocator brackets warm rounds of
//! different sizes; if any per-vector (or per-page) allocation crept back
//! into the gather/reduce loop, the big round would show hundreds of
//! extra events and the bounds here would fail.
//!
//! This file deliberately contains a single `#[test]` so no concurrent
//! test pollutes the process-global counters.

use recssd::{LookupBatch, OpId, OpKind, RecSsdConfig, SlsOptions, System};
use recssd_embedding::{EmbeddingTable, PageLayout, Quantization, TableImage, TableSpec};
use recssd_sim::alloc_count::{allocations_during, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Fixed per-request allocation headroom: command payloads, the sorted
/// pair list, NVMe completion boxes, result encode — each a *constant
/// number* of events per request regardless of how many vectors are
/// gathered. The bound only has to reject per-vector scaling (the small
/// round gathers 16 vectors, the big one 512).
const FIXED_MARGIN: u64 = 64;

fn batch(lookups: usize, rows: u64) -> LookupBatch {
    // Distinct rows spread evenly over the whole table, so every round
    // touches the same set of (dense-layout) flash pages regardless of
    // its lookup count — page-granular costs (the baseline ships whole
    // pages over NVMe; that asymmetry is the paper's point) are then
    // identical between rounds and only per-vector costs could differ.
    // Single output slot keeps per-output costs identical too.
    LookupBatch::new(vec![(0..lookups as u64)
        .map(|i| i * rows / lookups as u64)
        .collect()])
}

/// Submits, runs, drains and recycles one op, returning the allocation
/// events the whole round took.
fn measured_round(sys: &mut System, kind: OpKind) -> u64 {
    let (allocs, op) = allocations_during(|| {
        let op: OpId = sys.submit(kind);
        sys.run_until_idle();
        op
    });
    let result = sys.take_result(op);
    if let Some(out) = result.outputs {
        sys.recycle_outputs(out);
    }
    allocs
}

/// Runs the scaling assertion for one table layout. With
/// [`PageLayout::Dense`] the flash working set fits the FTL page cache, so
/// the rounds exercise the pure gather/reduce loop; with
/// [`PageLayout::Spread`] every distinct row is a distinct flash page and
/// the table dwarfs the page cache, so the big round drives ~512 full
/// page-miss services (flash read buffer → FTL page image → NVMe transfer
/// buffer). The page-buffer pools along that path must absorb all of it —
/// before pooling, the spread case cost ~3 allocations *per page*.
fn assert_rounds_flat(sys: &mut System, table: recssd::TableId, rows: u64, layout: &str) {
    let small = batch(16, rows);
    let big = batch(512, rows);

    for (label, mk) in [
        (
            "ndp",
            &(|b: &LookupBatch| OpKind::ndp_sls(table, b.clone(), SlsOptions::default()))
                as &dyn Fn(&LookupBatch) -> OpKind,
        ),
        ("baseline", &|b: &LookupBatch| {
            OpKind::baseline_sls(table, b.clone(), SlsOptions::default())
        }),
        ("dram", &|b: &LookupBatch| {
            OpKind::dram_sls(table, b.clone())
        }),
    ] {
        // Warm-up: grow every pool, cache and map to its steady size.
        for _ in 0..3 {
            measured_round(sys, mk(&big));
            measured_round(sys, mk(&small));
        }
        let a_small = measured_round(sys, mk(&small));
        let a_big = measured_round(sys, mk(&big));
        let a_small2 = measured_round(sys, mk(&small));

        // 32x the gathered vectors (and, for the spread layout, 32x the
        // flash pages) must not add per-vector or per-page allocations.
        assert!(
            a_big <= a_small.max(a_small2) + FIXED_MARGIN,
            "{label}/{layout}: steady-state allocations scale with lookups: \
             small {a_small}/{a_small2}, big {a_big}"
        );
        // And steady state really is steady: repeat rounds stay put.
        assert!(
            a_small2 <= a_small + FIXED_MARGIN,
            "{label}/{layout}: repeated identical rounds drift: {a_small} -> {a_small2}"
        );
    }
}

#[test]
fn steady_state_sls_allocations_do_not_scale_with_lookups() {
    let rows = 2000u64;
    // The wide small config: its 4096-page table-alignment slots fit the
    // 2000-page spread table below.
    let mut sys = System::new(RecSsdConfig::small_wide());
    // Dense layout: the flash-page working set is tiny, so after the
    // warm-up rounds every page is in the FTL page cache and the measured
    // rounds exercise exactly the steady-state gather/reduce loop.
    let spec = TableSpec::new(rows, 16, Quantization::F32);
    let dense = sys.add_table(TableImage::new(
        EmbeddingTable::procedural(spec, 1),
        PageLayout::Dense,
        16 * 1024,
    ));
    assert_rounds_flat(&mut sys, dense, rows, "dense");

    // Spread layout: one page per row, 2000 pages against a 32-page FTL
    // cache — (almost) every lookup is a full flash-page service. This is
    // the tightened bound: the page-buffer pools through
    // flash → FTL → device → host must make the miss path steady-state
    // allocation-free too.
    let spread = sys.add_table(TableImage::new(
        EmbeddingTable::procedural(spec, 2),
        PageLayout::Spread,
        16 * 1024,
    ));
    assert_rounds_flat(&mut sys, spread, rows, "spread");

    // Absolute steady-state pin: beyond not *scaling*, warm rounds must
    // allocate (essentially) nothing at all. The NDP path historically
    // leaked ~7 events per operator through the plan/encode/decode/
    // result-encode chain (915 allocs over a 128-batch throughput run);
    // the pair-list, config-payload and result-block pools drive that to
    // zero. A tiny slack absorbs one-off container growth (hash maps,
    // event heap) that is not per-round.
    const ROUNDS: u64 = 8;
    const TOTAL_SLACK: u64 = 8;
    for (label, mk) in [
        (
            "ndp",
            &(|b: &LookupBatch| OpKind::ndp_sls(spread, b.clone(), SlsOptions::default()))
                as &dyn Fn(&LookupBatch) -> OpKind,
        ),
        ("baseline", &|b: &LookupBatch| {
            OpKind::baseline_sls(spread, b.clone(), SlsOptions::default())
        }),
        ("dram", &|b: &LookupBatch| {
            OpKind::dram_sls(spread, b.clone())
        }),
    ] {
        let big = batch(512, rows);
        for _ in 0..3 {
            measured_round(&mut sys, mk(&big));
        }
        let total: u64 = (0..ROUNDS)
            .map(|_| measured_round(&mut sys, mk(&big)))
            .sum();
        assert!(
            total <= TOTAL_SLACK,
            "{label}/spread: {total} allocations over {ROUNDS} warm rounds \
             (want ~0; the steady-state pools have a leak)"
        );
    }
}
