//! **RecSSD**: near-data processing for SSD-based recommendation
//! inference — the core library of this reproduction.
//!
//! RecSSD offloads the SparseLengthsSum (SLS) embedding operator into the
//! SSD's FTL firmware. One NVMe *config-write* command (distinguished by a
//! spare command bit) ships a sorted list of `(input id, result id)` pairs
//! to the device; the firmware schedules every needed flash-page read
//! across the SSD's internal channels, extracts and accumulates the
//! embedding vectors on the embedded CPU ("Translation"), and a companion
//! *result-read* command returns only the reduced vectors. Compared to a
//! conventional SSD this (a) removes the per-command firmware cost that
//! caps host-visible random reads, (b) exploits the full internal flash
//! parallelism, and (c) stops shipping 16 KB pages over PCIe to use 128
//! bytes of them.
//!
//! The crate has two halves, mirroring the paper's artifact:
//!
//! * [`ndp`] — the firmware side (the RecSSD-OpenSSDFirmware analogue):
//!   [`NdpSlsEngine`] plugs into the simulated device's FTL via the
//!   [`recssd_ssd::NdpEngine`] hook and implements the six-step request
//!   lifetime of Fig. 7, the pending-SLS-request buffer, and the
//!   direct-mapped SSD-side embedding cache.
//! * [`host`] — the host side (the RecSSD-UNVMeDriver + RecSSD-RecInfra
//!   analogue): [`System`] owns the simulated device and a host CPU model,
//!   and runs the three SLS operator implementations the paper compares —
//!   [`OpKind::DramSls`] (embeddings in host DRAM), [`OpKind::BaselineSls`]
//!   (conventional NVMe reads + host-side accumulation + optional host LRU
//!   vector cache) and [`OpKind::NdpSls`] (the offload, with optional
//!   static partitioning of hot rows into host DRAM).
//!
//! # Quickstart
//!
//! ```
//! use recssd::{OpKind, RecSsdConfig, SlsOptions, System};
//! use recssd_embedding::{EmbeddingTable, LookupBatch, PageLayout, Quantization, TableImage, TableSpec};
//!
//! let mut sys = System::new(RecSsdConfig::small());
//! let spec = TableSpec::new(1_000, 32, Quantization::F32);
//! let image = TableImage::new(EmbeddingTable::procedural(spec, 1), PageLayout::Spread, 16 * 1024);
//! let table = sys.add_table(image);
//!
//! let batch = LookupBatch::new(vec![vec![1, 500, 900], vec![42, 42]]);
//! let ndp = sys.submit(OpKind::ndp_sls(table, batch.clone(), SlsOptions::default()));
//! let dram = sys.submit(OpKind::dram_sls(table, batch));
//! sys.run_until_idle();
//!
//! // The offloaded result is bit-identical to the DRAM reference.
//! assert_eq!(sys.result(ndp).outputs, sys.result(dram).outputs);
//! // And the simulation reports the virtual-time latency of each.
//! assert!(sys.result(ndp).latency() > recssd_sim::SimDuration::ZERO);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
pub mod host;
pub mod ndp;
mod proto;
mod tables;

pub use config::{HostConfig, NdpConfig, RecSsdConfig};
pub use host::{OpId, OpKind, OpResult, SlsOptions, System};
pub use ndp::{NdpSlsEngine, NdpStats, SlsRequestReport};
pub use proto::{DeviceError, SlsConfig, SlsConfigError, SlsOutput};
pub use tables::{TableBinding, TableRegistry};

pub use recssd_embedding::{LookupBatch, TableId};
pub use recssd_flash::{BrownoutWindow, FaultConfig, FaultPlan, FaultStats};
// Per-channel engine-pool knobs, so hosts can switch on in-SSD compute
// engines (`cfg.ssd.ftl.engines`) without a device-crate dependency.
pub use recssd_obs::{SpanId, TraceSink, Tracer};
pub use recssd_ssd::{EnginePoolConfig, MergePlacement};
