//! The NDP SLS wire format.
//!
//! §4.3 of the paper: "The parameters passed include embedding vector
//! dimensions such as attribute size and vector length, the total number
//! of input embeddings to be gathered, the total number of resulting
//! embeddings to be returned, and a list of (input ID, result ID) pairs
//! specifying the input embeddings and their accumulation destinations.
//! Adding a restriction that this list be sorted by input ID enables more
//! efficient processing on the SSD system."

use recssd_embedding::Quantization;

const MAGIC: u32 = 0x5245_4353; // "RECS"
const HEADER_BYTES: usize = 32;
const PAIR_BYTES: usize = 12;

/// A typed device-side failure surfaced to the host through a command
/// completion. Produced by [`crate::System`] when the device rejects or
/// fails a command instead of completing it with data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceError {
    /// An uncorrectable flash read poisoned the command
    /// ([`recssd_nvme::NvmeStatus::MediaError`]).
    Media,
    /// The device rejected the command with some other non-success status.
    Rejected(recssd_nvme::NvmeStatus),
}

impl DeviceError {
    /// Classifies a non-success completion status.
    ///
    /// # Panics
    ///
    /// Panics if called with [`recssd_nvme::NvmeStatus::Success`] — a
    /// successful completion is not an error.
    pub fn from_status(status: recssd_nvme::NvmeStatus) -> Self {
        match status {
            recssd_nvme::NvmeStatus::Success => {
                panic!("successful completion is not a device error")
            }
            recssd_nvme::NvmeStatus::MediaError => DeviceError::Media,
            other => DeviceError::Rejected(other),
        }
    }
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::Media => f.write_str("unrecovered media error"),
            DeviceError::Rejected(status) => write!(f, "command rejected: {status}"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// A block of SLS result vectors stored flat: `n` vectors of `dim`
/// elements in one contiguous `data` buffer with stride `dim`.
///
/// This is the shape results keep end to end — the device scratchpad
/// accumulates into it, the host merges into it and [`crate::OpResult`]
/// hands it to the caller — so the datapath never materialises per-vector
/// `Vec`s. Buffers are reusable: [`SlsOutput::reset`] reshapes in place
/// without shrinking capacity, which is what the engine's and host's
/// free-list pools rely on.
///
/// # Example
///
/// ```
/// use recssd::SlsOutput;
/// let mut out = SlsOutput::zeroed(2, 4);
/// out.row_mut(1)[3] = 7.0;
/// assert_eq!(out.row(1), &[0.0, 0.0, 0.0, 7.0]);
/// assert_eq!(out.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SlsOutput {
    data: Vec<f32>,
    dim: usize,
    n: usize,
}

impl SlsOutput {
    /// `n` zero vectors of `dim` elements.
    pub fn zeroed(n: usize, dim: usize) -> Self {
        SlsOutput {
            data: vec![0.0; n * dim],
            dim,
            n,
        }
    }

    /// Reshapes to `n × dim` and zero-fills, reusing the existing
    /// allocation when capacity allows — the pool-recycling entry point.
    pub fn reset(&mut self, n: usize, dim: usize) {
        self.data.clear();
        self.data.resize(n * dim, 0.0);
        self.n = n;
        self.dim = dim;
    }

    /// Number of result vectors.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Elements per vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Result vector `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutable result vector `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// All vectors in slot order (exactly `len()` of them, even for
    /// zero-dim outputs).
    pub fn rows(&self) -> impl Iterator<Item = &[f32]> {
        (0..self.n).map(|i| self.row(i))
    }

    /// The flat `n × dim` backing slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The flat `n × dim` backing slice, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Copies out to the legacy nested shape (tests, display).
    pub fn to_nested(&self) -> Vec<Vec<f32>> {
        self.rows().map(|r| r.to_vec()).collect()
    }

    /// Builds from the legacy nested shape.
    ///
    /// # Panics
    ///
    /// Panics if the inner vectors have unequal lengths.
    pub fn from_nested(nested: &[Vec<f32>]) -> Self {
        let dim = nested.first().map_or(0, |v| v.len());
        let mut out = SlsOutput::zeroed(nested.len(), dim);
        for (i, v) in nested.iter().enumerate() {
            assert_eq!(v.len(), dim, "ragged nested results");
            out.row_mut(i).copy_from_slice(v);
        }
        out
    }
}

/// Decoded SLS configuration as the device firmware sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct SlsConfig {
    /// Features per embedding vector ("vector length").
    pub dim: u32,
    /// Element storage format ("attribute size").
    pub quant: Quantization,
    /// Vectors stored per flash page (1 = spread layout).
    pub rows_per_page: u32,
    /// Number of result vectors to accumulate.
    pub n_results: u32,
    /// `(input row, result slot)` pairs, sorted by input row.
    pub pairs: Vec<(u64, u32)>,
}

/// Config command validation errors (surface as `InvalidField` NVMe
/// completions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlsConfigError {
    /// Payload shorter than the fixed header.
    Truncated,
    /// Magic number mismatch — not an SLS config.
    BadMagic,
    /// Unknown quantization code.
    BadQuant(u8),
    /// Zero dim, zero results or zero rows-per-page.
    ZeroField,
    /// Pair list not sorted by input id (§4.3 requires it).
    UnsortedPairs,
    /// A result slot exceeds `n_results`.
    ResultSlotOutOfRange {
        /// The offending slot.
        slot: u32,
        /// Declared result count.
        n_results: u32,
    },
    /// Declared pair count disagrees with the payload length.
    LengthMismatch,
}

impl std::fmt::Display for SlsConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlsConfigError::Truncated => f.write_str("config payload truncated"),
            SlsConfigError::BadMagic => f.write_str("config magic mismatch"),
            SlsConfigError::BadQuant(q) => write!(f, "unknown quantization code {q}"),
            SlsConfigError::ZeroField => f.write_str("zero-valued config field"),
            SlsConfigError::UnsortedPairs => f.write_str("pair list not sorted by input id"),
            SlsConfigError::ResultSlotOutOfRange { slot, n_results } => {
                write!(
                    f,
                    "result slot {slot} out of range (n_results = {n_results})"
                )
            }
            SlsConfigError::LengthMismatch => f.write_str("pair count disagrees with payload"),
        }
    }
}

impl std::error::Error for SlsConfigError {}

fn quant_code(q: Quantization) -> u8 {
    match q {
        Quantization::F32 => 0,
        Quantization::F16 => 1,
        Quantization::Int8 => 2,
    }
}

fn quant_from_code(c: u8) -> Option<Quantization> {
    match c {
        0 => Some(Quantization::F32),
        1 => Some(Quantization::F16),
        2 => Some(Quantization::Int8),
        _ => None,
    }
}

impl SlsConfig {
    /// Encoded bytes per row, derived from dim and quantization.
    #[inline]
    pub fn row_bytes(&self) -> usize {
        self.quant.row_bytes(self.dim as usize)
    }

    /// Bytes of the packed f32 result block (`n_results × dim × 4`).
    pub fn result_bytes(&self) -> usize {
        self.n_results as usize * self.dim as usize * 4
    }

    /// Logical blocks needed to return the results, for a given block
    /// size.
    pub fn result_blocks(&self, block_bytes: usize) -> u32 {
        self.result_bytes().div_ceil(block_bytes).max(1) as u32
    }

    /// `(relative page, byte offset)` of an input row under this config's
    /// layout.
    #[inline]
    pub fn locate_row(&self, row: u64) -> (u64, usize) {
        let page = row / self.rows_per_page as u64;
        let slot = (row % self.rows_per_page as u64) as usize;
        (page, slot * self.row_bytes())
    }

    /// Exact encoded payload length.
    pub fn encoded_len(&self) -> usize {
        HEADER_BYTES + self.pairs.len() * PAIR_BYTES
    }

    /// Serialises to the command payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Serialises into a caller-supplied buffer (cleared first); a pooled
    /// buffer of [`SlsConfig::encoded_len`] capacity makes steady-state
    /// encoding allocation-free.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(self.encoded_len());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&self.dim.to_le_bytes());
        out.push(quant_code(self.quant));
        out.extend_from_slice(&[0u8; 3]); // reserved
        out.extend_from_slice(&self.rows_per_page.to_le_bytes());
        out.extend_from_slice(&self.n_results.to_le_bytes());
        out.extend_from_slice(&(self.pairs.len() as u32).to_le_bytes());
        out.extend_from_slice(&[0u8; 8]); // reserved
        debug_assert_eq!(out.len(), HEADER_BYTES);
        for &(row, slot) in &self.pairs {
            out.extend_from_slice(&row.to_le_bytes());
            out.extend_from_slice(&slot.to_le_bytes());
        }
        debug_assert_eq!(out.len(), self.encoded_len());
    }

    /// Parses and validates a command payload.
    ///
    /// # Errors
    ///
    /// Any [`SlsConfigError`] listed above.
    pub fn decode(bytes: &[u8]) -> Result<SlsConfig, SlsConfigError> {
        Self::decode_pooled(bytes, Vec::new())
    }

    /// [`SlsConfig::decode`] reusing a recycled pair buffer (cleared
    /// first) for the parsed list, so steady-state firmware decoding
    /// allocates nothing. The buffer is dropped on the (cold) error
    /// paths.
    ///
    /// # Errors
    ///
    /// Any [`SlsConfigError`] listed above.
    pub fn decode_pooled(
        bytes: &[u8],
        mut pairs: Vec<(u64, u32)>,
    ) -> Result<SlsConfig, SlsConfigError> {
        if bytes.len() < HEADER_BYTES {
            return Err(SlsConfigError::Truncated);
        }
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4 bytes"));
        if u32_at(0) != MAGIC {
            return Err(SlsConfigError::BadMagic);
        }
        let dim = u32_at(4);
        let quant = quant_from_code(bytes[8]).ok_or(SlsConfigError::BadQuant(bytes[8]))?;
        let rows_per_page = u32_at(12);
        let n_results = u32_at(16);
        let n_pairs = u32_at(20) as usize;
        if dim == 0 || rows_per_page == 0 || n_results == 0 {
            return Err(SlsConfigError::ZeroField);
        }
        if bytes.len() < HEADER_BYTES + n_pairs * PAIR_BYTES {
            return Err(SlsConfigError::LengthMismatch);
        }
        pairs.clear();
        pairs.reserve(n_pairs);
        let mut prev_row = 0u64;
        for i in 0..n_pairs {
            let off = HEADER_BYTES + i * PAIR_BYTES;
            let row = u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
            let slot = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().expect("4 bytes"));
            if i > 0 && row < prev_row {
                return Err(SlsConfigError::UnsortedPairs);
            }
            if slot >= n_results {
                return Err(SlsConfigError::ResultSlotOutOfRange { slot, n_results });
            }
            prev_row = row;
            pairs.push((row, slot));
        }
        Ok(SlsConfig {
            dim,
            quant,
            rows_per_page,
            n_results,
            pairs,
        })
    }

    /// Bytes of the padded result block for `n` f32 values.
    pub fn padded_result_len(n: usize, block_bytes: usize) -> usize {
        (n * 4).div_ceil(block_bytes).max(1) * block_bytes
    }

    /// Packs result vectors into a fresh result-read data block, padded
    /// to whole blocks.
    pub fn encode_results(results: &[f32], block_bytes: usize) -> Vec<u8> {
        let mut out = Vec::new();
        Self::encode_results_into(results, block_bytes, &mut out);
        out
    }

    /// [`SlsConfig::encode_results`] into a caller-supplied buffer
    /// (cleared and re-zeroed); the NVMe completion takes ownership of
    /// the block, so callers wanting steady-state allocation freedom pull
    /// the buffer from the device's transfer-buffer pool and the host
    /// hands it back there after merging.
    pub fn encode_results_into(results: &[f32], block_bytes: usize, out: &mut Vec<u8>) {
        out.clear();
        out.resize(Self::padded_result_len(results.len(), block_bytes), 0);
        for (i, v) in results.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Unpacks and *adds* `acc.len()` f32 values from result-read data
    /// into `acc` — the host-side merge of device partial sums, with no
    /// intermediate vectors.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than `acc.len() * 4`.
    #[inline]
    pub fn accumulate_results(bytes: &[u8], acc: &mut [f32]) {
        assert!(bytes.len() >= acc.len() * 4, "result data truncated");
        for (a, c) in acc.iter_mut().zip(bytes.chunks_exact(4)) {
            *a += f32::from_le_bytes(c.try_into().expect("4 bytes"));
        }
    }

    /// Unpacks `n_results × dim` f32 values from result-read data.
    /// Allocating wrapper used by tests and tools; the host runtime
    /// merges with [`SlsConfig::accumulate_results`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is too short.
    pub fn decode_results(bytes: &[u8], n_results: usize, dim: usize) -> Vec<Vec<f32>> {
        let mut out = SlsOutput::zeroed(n_results, dim);
        Self::accumulate_results(bytes, out.as_mut_slice());
        out.to_nested()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SlsConfig {
        SlsConfig {
            dim: 32,
            quant: Quantization::F32,
            rows_per_page: 1,
            n_results: 4,
            pairs: vec![(1, 0), (1, 3), (7, 2), (900, 1)],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let cfg = sample();
        let decoded = SlsConfig::decode(&cfg.encode()).unwrap();
        assert_eq!(decoded, cfg);
    }

    #[test]
    fn round_trip_all_quantizations() {
        for q in [Quantization::F32, Quantization::F16, Quantization::Int8] {
            let cfg = SlsConfig {
                quant: q,
                ..sample()
            };
            assert_eq!(SlsConfig::decode(&cfg.encode()).unwrap().quant, q);
        }
    }

    #[test]
    fn unsorted_pairs_rejected() {
        let mut cfg = sample();
        cfg.pairs = vec![(9, 0), (1, 0)];
        assert_eq!(
            SlsConfig::decode(&cfg.encode()),
            Err(SlsConfigError::UnsortedPairs)
        );
    }

    #[test]
    fn bad_slot_rejected() {
        let mut cfg = sample();
        cfg.pairs = vec![(1, 4)];
        assert_eq!(
            SlsConfig::decode(&cfg.encode()),
            Err(SlsConfigError::ResultSlotOutOfRange {
                slot: 4,
                n_results: 4
            })
        );
    }

    #[test]
    fn corrupt_payloads_rejected() {
        assert_eq!(SlsConfig::decode(&[0u8; 8]), Err(SlsConfigError::Truncated));
        let mut bytes = sample().encode();
        bytes[0] ^= 0xFF;
        assert_eq!(SlsConfig::decode(&bytes), Err(SlsConfigError::BadMagic));
        let mut bytes = sample().encode();
        bytes[8] = 99;
        assert_eq!(SlsConfig::decode(&bytes), Err(SlsConfigError::BadQuant(99)));
        let mut bytes = sample().encode();
        bytes.truncate(HEADER_BYTES + 2);
        assert_eq!(
            SlsConfig::decode(&bytes),
            Err(SlsConfigError::LengthMismatch)
        );
    }

    #[test]
    fn zero_fields_rejected() {
        let mut cfg = sample();
        cfg.dim = 0;
        assert_eq!(
            SlsConfig::decode(&cfg.encode()),
            Err(SlsConfigError::ZeroField)
        );
    }

    #[test]
    fn row_location_spread_and_dense() {
        let spread = sample();
        assert_eq!(spread.locate_row(5), (5, 0));
        let dense = SlsConfig {
            rows_per_page: 128,
            ..sample()
        };
        assert_eq!(dense.locate_row(130), (1, 2 * 128));
    }

    #[test]
    fn result_block_math() {
        let cfg = sample();
        assert_eq!(cfg.result_bytes(), 4 * 32 * 4);
        assert_eq!(cfg.result_blocks(16 * 1024), 1);
        let big = SlsConfig {
            n_results: 64,
            dim: 256,
            ..sample()
        };
        assert_eq!(big.result_blocks(16 * 1024), 4);
    }

    #[test]
    fn results_round_trip() {
        let vals: Vec<f32> = (0..12).map(|i| i as f32 / 4.0).collect();
        let bytes = SlsConfig::encode_results(&vals, 64);
        assert_eq!(bytes.len() % 64, 0);
        let out = SlsConfig::decode_results(&bytes, 3, 4);
        assert_eq!(out[0], vec![0.0, 0.25, 0.5, 0.75]);
        assert_eq!(out[2], vec![2.0, 2.25, 2.5, 2.75]);
    }

    #[test]
    fn accumulate_results_adds_in_place() {
        let vals: Vec<f32> = vec![1.0, 2.0, 3.0];
        let bytes = SlsConfig::encode_results(&vals, 64);
        let mut acc = vec![0.5f32, 0.5, 0.5];
        SlsConfig::accumulate_results(&bytes, &mut acc);
        assert_eq!(acc, vec![1.5, 2.5, 3.5]);
    }

    #[test]
    fn sls_output_rows_and_reset() {
        let mut out = SlsOutput::zeroed(3, 2);
        assert_eq!(out.len(), 3);
        assert_eq!(out.dim(), 2);
        out.row_mut(1).copy_from_slice(&[4.0, 5.0]);
        assert_eq!(out.row(1), &[4.0, 5.0]);
        assert_eq!(out.rows().count(), 3);
        assert_eq!(out.as_slice(), &[0.0, 0.0, 4.0, 5.0, 0.0, 0.0]);
        // Reset reshapes and zeroes without losing capacity.
        let cap = out.as_slice().len();
        out.reset(2, 3);
        assert_eq!((out.len(), out.dim()), (2, 3));
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(out.as_slice().len(), cap);
    }

    #[test]
    fn sls_output_zero_dim_stays_consistent() {
        let out = SlsOutput::zeroed(3, 0);
        assert_eq!(out.len(), 3);
        assert_eq!(out.rows().count(), 3);
        assert_eq!(out.to_nested(), vec![Vec::<f32>::new(); 3]);
        assert_eq!(SlsOutput::from_nested(&out.to_nested()).len(), 3);
    }

    #[test]
    fn sls_output_nested_round_trip() {
        let nested = vec![vec![1.0f32, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let flat = SlsOutput::from_nested(&nested);
        assert_eq!(flat.to_nested(), nested);
        assert_eq!(flat.row(2), &[5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn sls_output_rejects_ragged_nested() {
        SlsOutput::from_nested(&[vec![1.0], vec![2.0, 3.0]]);
    }
}
