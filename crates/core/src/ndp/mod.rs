//! The firmware side of RecSSD: the NDP SLS engine installed in the FTL.

mod engine;

pub use engine::{NdpSlsEngine, NdpStats, SlsRequestReport};
