//! The in-FTL SLS engine: request buffer, config processing, translation,
//! result scratchpad and the SSD-side embedding cache.
//!
//! This is the reproduction of §4.1's design (Fig. 7). The lifetime of one
//! SLS request:
//!
//! 1a. A write-like NVMe command with the spare bit arrives; an entry is
//!     allocated in the pending-SLS-request buffer and the configuration
//!     payload is DMA'd from the host.
//! 2.  *Config processing* (a firmware task): the sorted pair list is
//!     scanned, inputs are separated by flash page, and the SSD-side
//!     embedding cache absorbs whatever vectors it holds (step 2a).
//! 3.  Page reads are fed through the FTL's page scheduler (3a); pages
//!     already in the FTL page cache are processed directly (3b).
//! 4/5. Each returned page triggers a *Translation* firmware task that
//!     extracts the needed vectors and accumulates them into the entry's
//!     result scratchpad.
//! 1b/6. A read-like command (matched through the request id embedded in
//!     its SLBA) collects the result pages; once all pages are processed
//!     the results are DMA'd back and the entry is deallocated.
//!
//! # Steady-state allocation discipline
//!
//! The gather/reduce loop here is the simulator's hottest path, so it is
//! structured to perform **zero heap allocations per gathered vector**
//! once warm:
//!
//! * results live in a flat [`SlsOutput`] scratchpad and vectors are
//!   folded in with the fused `decode_accumulate` (no per-vector `Vec`);
//! * the per-page work lists are two flat `Vec`s (`work_items` +
//!   `page_work` index) built by one scan of the sorted pair list —
//!   sortedness means equal pages are adjacent, so grouping needs no map;
//! * entry buffers are recycled through a free-list pool when a request
//!   completes, so steady-state requests allocate nothing for them;
//! * the SSD-side embedding cache stores vectors in per-slot buffers that
//!   are overwritten in place on insert.

use std::sync::Arc;

use recssd_embedding::Quantization;
use recssd_ftl::{FtlOutcome, FwTag, ReadStarted, ReqId};
use recssd_nvme::{NvmeCommand, NvmeCompletion, NvmeOpcode, NvmeStatus, XferDirection, XferId};
use recssd_sim::rng::mix64;
use recssd_sim::stats::{Counter, HitStats};
use recssd_sim::{FxHashMap, SimDuration, SimTime};
use recssd_ssd::{DeviceCtx, MergePlacement, NdpEngine, SsdEvent, EXT_TAG_BIT};

use crate::{NdpConfig, SlsConfig, SlsOutput};

/// Per-request latency breakdown, the instrumentation behind Fig. 8.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SlsRequestReport {
    /// Command arrival → configuration DMA complete ("Config Write").
    pub config_write: SimDuration,
    /// Duration of the config-processing firmware task ("Config Process").
    pub config_process: SimDuration,
    /// Sum of translation firmware task durations ("Translation").
    pub translation: SimDuration,
    /// Duration of the partial-result merge task (zero without a
    /// per-channel engine pool).
    pub merge: SimDuration,
    /// Time the FTL spent managing/waiting on flash beyond translation
    /// ("Flash Read").
    pub flash_read: SimDuration,
    /// Arrival → results ready.
    pub total: SimDuration,
    /// Flash pages this request touched.
    pub pages: usize,
    /// Vectors served by the SSD-side embedding cache.
    pub cache_hits: u64,
    /// Total vectors gathered.
    pub lookups: u64,
}

/// Aggregate engine statistics.
#[derive(Debug, Clone, Default)]
pub struct NdpStats {
    /// SLS requests completed.
    pub sls_requests: Counter,
    /// Page reads issued to the FTL (cache hits included).
    pub pages_requested: Counter,
    /// Hit/miss accounting of the SSD-side embedding cache (per vector).
    pub embed_cache: HitStats,
    /// Component-wise running sum of per-request breakdowns. A
    /// fixed-size accumulator — rather than a per-request vector —
    /// keeps request completion allocation-free in steady state;
    /// divide by `sls_requests` for the mean.
    report_sum: SlsRequestReport,
    /// The most recently completed request's breakdown.
    last_report: SlsRequestReport,
}

impl NdpStats {
    /// Clears accumulated reports and counters (between experiment runs).
    pub fn reset(&mut self) {
        *self = NdpStats::default();
    }

    /// The most recently completed request's latency breakdown
    /// (all-zero until the first request completes).
    pub fn last_report(&self) -> SlsRequestReport {
        self.last_report
    }

    /// Folds one completed request's breakdown into the running sum.
    fn record_report(&mut self, r: &SlsRequestReport) {
        self.last_report = *r;
        let acc = &mut self.report_sum;
        acc.config_write += r.config_write;
        acc.config_process += r.config_process;
        acc.translation += r.translation;
        acc.merge += r.merge;
        acc.flash_read += r.flash_read;
        acc.total += r.total;
        acc.pages += r.pages;
        acc.cache_hits += r.cache_hits;
        acc.lookups += r.lookups;
    }

    /// Mean breakdown over all completed requests.
    ///
    /// # Panics
    ///
    /// Panics if no requests completed.
    pub fn mean_report(&self) -> SlsRequestReport {
        let n = self.sls_requests.get();
        assert!(n > 0, "no SLS requests completed");
        let acc = &self.report_sum;
        SlsRequestReport {
            config_write: acc.config_write / n,
            config_process: acc.config_process / n,
            translation: acc.translation / n,
            merge: acc.merge / n,
            flash_read: acc.flash_read / n,
            total: acc.total / n,
            pages: acc.pages / n as usize,
            cache_hits: acc.cache_hits / n,
            lookups: acc.lookups / n,
        }
    }
}

/// The direct-mapped SSD-side embedding cache (§4.2). Keys are
/// `(table base, row)`; values are decoded f32 vectors held in per-slot
/// buffers that inserts overwrite in place (no steady-state allocation).
/// Collisions are verified against the full key, so a slot conflict is a
/// miss, never a wrong vector.
#[derive(Debug)]
struct EmbedCache {
    /// `(table base, row)` tag per slot; `None` = empty.
    tags: Vec<Option<(u64, u64)>>,
    /// Slot value buffers, reused across inserts.
    rows: Vec<Vec<f32>>,
}

impl EmbedCache {
    fn new(slots: usize) -> Self {
        EmbedCache {
            tags: vec![None; slots],
            rows: vec![Vec::new(); slots],
        }
    }

    #[inline]
    fn key(base: u64, row: u64) -> u64 {
        mix64(base).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ row
    }

    #[inline]
    fn slot(&self, base: u64, row: u64) -> usize {
        (Self::key(base, row) % self.tags.len() as u64) as usize
    }

    fn get(&self, base: u64, row: u64, stats: &mut HitStats) -> Option<&[f32]> {
        if self.tags.is_empty() {
            return None;
        }
        let slot = self.slot(base, row);
        if self.tags[slot] == Some((base, row)) {
            stats.hit();
            Some(&self.rows[slot])
        } else {
            stats.miss();
            None
        }
    }

    fn insert(&mut self, base: u64, row: u64, v: &[f32]) {
        if self.tags.is_empty() {
            return;
        }
        let slot = self.slot(base, row);
        self.tags[slot] = Some((base, row));
        let buf = &mut self.rows[slot];
        buf.clear();
        buf.extend_from_slice(v);
    }

    fn enabled(&self) -> bool {
        !self.tags.is_empty()
    }
}

#[derive(Debug)]
enum FwJob {
    ConfigProcess {
        request: u64,
    },
    Translate {
        request: u64,
        /// Index into the entry's `page_work`.
        widx: usize,
        data: Arc<[u8]>,
        duration: SimDuration,
        /// Pool engine the translation ran on (`None` = firmware core,
        /// the single-core legacy path).
        engine: Option<u32>,
    },
    /// Fold the per-engine partial accumulators into the entry's result
    /// scratchpad (multi-engine path only).
    Merge {
        request: u64,
    },
}

/// One distinct flash page of a request: its work items are
/// `work_items[start..start + len]`.
#[derive(Debug, Clone, Copy, Default)]
struct PageWork {
    page: u64,
    start: u32,
    len: u32,
}

/// Pooled per-entry buffers, recycled across requests so steady-state
/// request processing allocates nothing for them.
#[derive(Debug, Default)]
struct EntryBufs {
    results: SlsOutput,
    work_items: Vec<(usize, u32)>,
    page_work: Vec<PageWork>,
    /// Recycled pair-list buffer for [`SlsConfig::decode_pooled`].
    pairs: Vec<(u64, u32)>,
    /// Engine-local partial accumulators (multi-engine path).
    partials: Vec<SlsOutput>,
    /// Pages translated per engine (sizes the merge charge).
    partial_pages: Vec<u32>,
}

#[derive(Debug)]
struct SlsEntry {
    qid: u16,
    write_cid: u16,
    table_base: u64,
    raw_config: Option<Vec<u8>>,
    /// Pooled pair buffer handed to the config decode.
    pairs_buf: Vec<(u64, u32)>,
    cfg: Option<SlsConfig>,
    /// `(byte offset, result slot)` items, grouped by page in `page_work`
    /// order (pages ascending — the §4.3 sorted-pair contract makes the
    /// grouping a single linear scan).
    work_items: Vec<(usize, u32)>,
    /// One record per distinct page, ascending page order.
    page_work: Vec<PageWork>,
    pages_pending: usize,
    results: SlsOutput,
    /// Engine-local partial accumulators, indexed by pool engine. Empty
    /// on the single-core path, where translation folds straight into
    /// `results`.
    partials: Vec<SlsOutput>,
    /// Pages translated per engine.
    partial_pages: Vec<u32>,
    /// A merge task must still run (and has not been charged yet).
    needs_merge: bool,
    results_ready: bool,
    /// An injected uncorrectable flash read poisoned this request; it will
    /// complete with [`NvmeStatus::MediaError`] instead of result data.
    failed: bool,
    read_cmd: Option<(u16, u16, u32)>,
    // Instrumentation (Fig. 8 categories).
    t_arrive: SimTime,
    t_config_written: SimTime,
    t_processed: SimTime,
    t_last_page: SimTime,
    /// Instant the merged results became ready (equals `t_last_page` on
    /// the single-core path; after the merge task otherwise).
    t_ready: SimTime,
    config_process: SimDuration,
    translation: SimDuration,
    merge: SimDuration,
    cache_hits: u64,
    lookups: u64,
}

/// The RecSSD firmware engine. Install into a device with
/// [`recssd_ssd::SsdDevice::with_engine`]; drive it by submitting
/// [`NvmeCommand::ndp_write`]/[`NvmeCommand::ndp_read`] pairs (the
/// [`crate::System`] host runtime does this for you).
#[derive(Debug)]
pub struct NdpSlsEngine {
    cfg: NdpConfig,
    entries: FxHashMap<u64, SlsEntry>,
    fw_jobs: FxHashMap<u64, FwJob>,
    next_tag: u64,
    dma_in: FxHashMap<XferId, u64>,
    dma_out: FxHashMap<XferId, u64>,
    reads: FxHashMap<ReqId, (u64, usize)>,
    cache: EmbedCache,
    /// Reused decode buffer for the cache-fill path.
    row_scratch: Vec<f32>,
    /// Free-list of recycled entry buffers.
    buf_pool: Vec<EntryBufs>,
    stats: NdpStats,
}

impl NdpSlsEngine {
    /// Creates an engine with the given parameters.
    pub fn new(cfg: NdpConfig) -> Self {
        NdpSlsEngine {
            cache: EmbedCache::new(cfg.embed_cache_slots),
            cfg,
            entries: FxHashMap::default(),
            fw_jobs: FxHashMap::default(),
            next_tag: 0,
            dma_in: FxHashMap::default(),
            dma_out: FxHashMap::default(),
            reads: FxHashMap::default(),
            row_scratch: Vec::new(),
            buf_pool: Vec::new(),
            stats: NdpStats::default(),
        }
    }

    /// Engine statistics (breakdowns, cache hit rates).
    pub fn stats(&self) -> &NdpStats {
        &self.stats
    }

    /// Resets statistics between experiment phases.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// `true` if the SSD-side embedding cache is enabled.
    pub fn embed_cache_enabled(&self) -> bool {
        self.cache.enabled()
    }

    fn alloc_tag(&mut self, job: FwJob) -> FwTag {
        let tag = self.next_tag | EXT_TAG_BIT;
        self.next_tag += 1;
        self.fw_jobs.insert(tag, job);
        FwTag(tag)
    }

    fn charge_fw(ctx: &mut DeviceCtx<'_>, dur: SimDuration, tag: FwTag) {
        let ftl = &mut *ctx.ftl;
        let sched = &mut *ctx.sched;
        ftl.charge_firmware(ctx.now, dur, tag, &mut |d, e| sched(d, SsdEvent::Ftl(e)));
    }

    fn charge_engine(ctx: &mut DeviceCtx<'_>, engine: usize, dur: SimDuration, tag: FwTag) {
        let ftl = &mut *ctx.ftl;
        let sched = &mut *ctx.sched;
        ftl.charge_engine(ctx.now, engine, dur, tag, &mut |d, e| {
            sched(d, SsdEvent::Ftl(e))
        });
    }

    /// Returns an entry's buffers to the free-list pool.
    fn recycle(&mut self, entry: SlsEntry) {
        if self.buf_pool.len() < self.cfg.max_entries {
            // The decoded pair list lives inside `cfg` once configured;
            // reclaim whichever buffer holds the capacity.
            let pairs = match entry.cfg {
                Some(cfg) => cfg.pairs,
                None => entry.pairs_buf,
            };
            self.buf_pool.push(EntryBufs {
                results: entry.results,
                work_items: entry.work_items,
                page_work: entry.page_work,
                pairs,
                partials: entry.partials,
                partial_pages: entry.partial_pages,
            });
        }
    }

    /// Step 2/3: configuration processed — build work lists, absorb cache
    /// hits, issue page reads, and complete the config-write command.
    fn process_config(&mut self, ctx: &mut DeviceCtx<'_>, request: u64) {
        let page_bytes = ctx.ftl.page_bytes();
        let entry = self.entries.get_mut(&request).expect("entry exists");
        let raw = entry.raw_config.take().expect("config payload present");
        let pairs_buf = std::mem::take(&mut entry.pairs_buf);
        let cfg = SlsConfig::decode_pooled(&raw, pairs_buf)
            .ok()
            .filter(|cfg| cfg.row_bytes() * cfg.rows_per_page as usize <= page_bytes);
        // The config payload has been parsed; its buffer rejoins the
        // device's transfer pool so the host's next config-write reuses it.
        ctx.recycle_buffer(raw);
        let Some(cfg) = cfg else {
            let (qid, cid) = (entry.qid, entry.write_cid);
            let entry = self.entries.remove(&request).expect("entry exists");
            self.recycle(entry);
            ctx.complete(qid, NvmeCompletion::error(cid, NvmeStatus::InvalidField));
            return;
        };

        // Build the flat per-page work lists with one scan of the sorted
        // pair list (step 2), folding embedding-cache hits straight into
        // the result scratchpad (step 2a). Disjoint-field borrows let the
        // cache lend slices while the entry accumulates.
        let Self {
            cache,
            entries,
            stats,
            ..
        } = self;
        let entry = entries.get_mut(&request).expect("entry exists");
        entry
            .results
            .reset(cfg.n_results as usize, cfg.dim as usize);
        entry.lookups = cfg.pairs.len() as u64;
        entry.work_items.clear();
        entry.page_work.clear();
        let base = entry.table_base;
        for &(row, slot) in &cfg.pairs {
            if let Some(vec) = cache.get(base, row, &mut stats.embed_cache) {
                entry.cache_hits += 1;
                for (o, v) in entry.results.row_mut(slot as usize).iter_mut().zip(vec) {
                    *o += *v;
                }
                continue;
            }
            let (page, offset) = cfg.locate_row(row);
            match entry.page_work.last_mut() {
                Some(w) if w.page == page => w.len += 1,
                _ => entry.page_work.push(PageWork {
                    page,
                    start: entry.work_items.len() as u32,
                    len: 1,
                }),
            }
            entry.work_items.push((offset, slot));
        }
        let n_pages = entry.page_work.len();
        entry.pages_pending = n_pages;
        entry.t_processed = ctx.now;
        entry.t_last_page = ctx.now;
        let (qid, write_cid) = (entry.qid, entry.write_cid);

        // Multi-engine split: per-page translation will land on the
        // engine owning the page's channel, accumulating into
        // engine-local partials that a final merge folds together.
        let engines = ctx.ftl.engine_count();
        if engines > 0 && n_pages > 0 {
            let (n_results, dim) = (cfg.n_results as usize, cfg.dim as usize);
            entry.partials.resize_with(engines, SlsOutput::default);
            entry.partials.truncate(engines);
            for p in &mut entry.partials {
                p.reset(n_results, dim);
            }
            entry.partial_pages.clear();
            entry.partial_pages.resize(engines, 0);
            entry.needs_merge = true;
        }
        entry.cfg = Some(cfg);

        // Issue all page reads through the FTL's page scheduler (step 3a);
        // FTL page-cache hits are processed directly (step 3b).
        for widx in 0..n_pages {
            let page = self.entries[&request].page_work[widx].page;
            self.stats.pages_requested.inc();
            let lpn = recssd_ftl::Lpn(base + page);
            let started = {
                let ftl = &mut *ctx.ftl;
                let sched = &mut *ctx.sched;
                ftl.read_page(ctx.now, lpn, &mut |d, e| sched(d, SsdEvent::Ftl(e)))
                    .expect("table pages are in range")
            };
            match started {
                ReadStarted::Pending(req) => {
                    self.reads.insert(req, (request, widx));
                }
                ReadStarted::CacheHit(data) => {
                    self.start_translation(ctx, request, widx, data);
                }
                ReadStarted::Unmapped => {
                    // Reads as zeros; translate a zero page so timing and
                    // accounting stay uniform.
                    let zeros: Arc<[u8]> = vec![0u8; page_bytes].into();
                    self.start_translation(ctx, request, widx, zeros);
                }
            }
        }
        // The write-like command completes once the entry is configured.
        ctx.complete(qid, NvmeCompletion::success(write_cid, None));
        self.maybe_finish(ctx, request);
    }

    /// Step 4: page data available — charge the translation task. With a
    /// per-channel engine pool the charge lands on the engine owning the
    /// page's flash channel (the transparent splitter); otherwise on the
    /// serial firmware core, exactly the single-core model.
    fn start_translation(
        &mut self,
        ctx: &mut DeviceCtx<'_>,
        request: u64,
        widx: usize,
        data: Arc<[u8]>,
    ) {
        let entry = self.entries.get_mut(&request).expect("entry exists");
        let cfg = entry.cfg.as_ref().expect("configured");
        let vectors = entry.page_work[widx].len as usize;
        let duration = self.cfg.translate_time(vectors * cfg.row_bytes());
        let engines = ctx.ftl.engine_count();
        let engine = if engines > 0 {
            let lpn = recssd_ftl::Lpn(entry.table_base + entry.page_work[widx].page);
            let e = ctx.ftl.channel_of(lpn) as usize % engines;
            entry.partial_pages[e] += 1;
            Some(e as u32)
        } else {
            None
        };
        let tag = self.alloc_tag(FwJob::Translate {
            request,
            widx,
            data,
            duration,
            engine,
        });
        match engine {
            Some(e) => Self::charge_engine(ctx, e as usize, duration, tag),
            None => Self::charge_fw(ctx, duration, tag),
        }
    }

    /// Step 5: translation done — extract vectors, accumulate, fill the
    /// embedding cache. The fused `decode_accumulate` path allocates
    /// nothing; with the embedding cache enabled, vectors pass through
    /// the engine's reused `row_scratch` so cache fills stay
    /// allocation-free too.
    fn apply_translation(
        &mut self,
        ctx: &mut DeviceCtx<'_>,
        request: u64,
        widx: usize,
        data: &[u8],
        duration: SimDuration,
        engine: Option<u32>,
    ) {
        let Self {
            cache,
            entries,
            row_scratch,
            ..
        } = self;
        let entry = entries.get_mut(&request).expect("entry exists");
        let cfg = entry.cfg.as_ref().expect("configured");
        let dim = cfg.dim as usize;
        let row_bytes = cfg.row_bytes();
        let rows_per_page = cfg.rows_per_page as u64;
        let quant: Quantization = cfg.quant;
        let w = entry.page_work[widx];
        let base = entry.table_base;
        let items = w.start as usize..(w.start + w.len) as usize;
        // Engine translations fold into the engine-local partial; the
        // merge task later combines partials in fixed engine order.
        let SlsEntry {
            results,
            partials,
            work_items,
            ..
        } = &mut *entry;
        let target = match engine {
            Some(e) => &mut partials[e as usize],
            None => results,
        };
        if cache.enabled() {
            row_scratch.clear();
            row_scratch.resize(dim, 0.0);
            for i in items {
                let (offset, slot) = work_items[i];
                quant.decode_into(&data[offset..], row_scratch);
                for (o, v) in target.row_mut(slot as usize).iter_mut().zip(&*row_scratch) {
                    *o += *v;
                }
                let row = w.page * rows_per_page + (offset / row_bytes) as u64;
                cache.insert(base, row, row_scratch);
            }
        } else {
            for i in items {
                let (offset, slot) = work_items[i];
                quant.decode_accumulate(&data[offset..], target.row_mut(slot as usize));
            }
        }
        entry.translation += duration;
        entry.pages_pending -= 1;
        entry.t_last_page = ctx.now;
        self.maybe_finish(ctx, request);
    }

    /// Merge task done: fold each engine's partial into the result
    /// scratchpad in fixed engine-index order — deterministic regardless
    /// of which engine finished last — skipping engines that saw no pages
    /// (their partials are all-zero and contribute nothing).
    fn apply_merge(&mut self, ctx: &mut DeviceCtx<'_>, request: u64) {
        let entry = self.entries.get_mut(&request).expect("entry exists");
        let SlsEntry {
            results,
            partials,
            partial_pages,
            ..
        } = &mut *entry;
        for (p, &pages) in partials.iter().zip(partial_pages.iter()) {
            if pages == 0 {
                continue;
            }
            for (o, v) in results.as_mut_slice().iter_mut().zip(p.as_slice()) {
                *o += *v;
            }
        }
        self.maybe_finish(ctx, request);
    }

    /// Step 6: if everything is accumulated and the host's read-like
    /// command has arrived, DMA the results back.
    fn maybe_finish(&mut self, ctx: &mut DeviceCtx<'_>, request: u64) {
        let block_bytes = ctx.ftl.page_bytes();
        let entry = self.entries.get_mut(&request).expect("entry exists");
        if entry.pages_pending > 0 || entry.cfg.is_none() {
            return;
        }
        if entry.failed {
            // A gather page hit an uncorrectable flash error: once the
            // host's result-read is matched, surface a typed media error
            // instead of DMAing a partial accumulation.
            let Some((qid, cid, _)) = entry.read_cmd else {
                return;
            };
            let entry = self.entries.remove(&request).expect("entry exists");
            self.recycle(entry);
            ctx.complete(qid, NvmeCompletion::error(cid, NvmeStatus::MediaError));
            return;
        }
        if entry.needs_merge {
            // Every page is translated: fold the per-engine partials into
            // the result scratchpad. The merge is itself a timed task on a
            // config-selected resource (fw core or a designated engine);
            // its cost scales with the partials that saw work.
            entry.needs_merge = false;
            let cfg = entry.cfg.as_ref().expect("configured");
            let active = entry.partial_pages.iter().filter(|&&c| c > 0).count();
            let dur = self.cfg.merge_time(cfg.result_bytes() * active);
            entry.merge = dur;
            let placement = ctx
                .ftl
                .engine_config()
                .expect("engine pool configured")
                .merge;
            let tag = self.alloc_tag(FwJob::Merge { request });
            match placement {
                MergePlacement::FwCore => Self::charge_fw(ctx, dur, tag),
                MergePlacement::Engine(i) => Self::charge_engine(ctx, i as usize, dur, tag),
            }
            return;
        }
        if !entry.results_ready {
            entry.results_ready = true;
            entry.t_ready = ctx.now;
        }
        let Some((_qid, _cid, nlb)) = entry.read_cmd else {
            return;
        };
        let cfg = entry.cfg.as_ref().expect("configured");
        let needed = cfg.result_blocks(block_bytes);
        if nlb < needed {
            let (qid, cid, _) = entry.read_cmd.take().expect("checked");
            ctx.complete(qid, NvmeCompletion::error(cid, NvmeStatus::InvalidField));
            return;
        }
        let bytes = cfg.result_bytes().div_ceil(block_bytes).max(1) * block_bytes;
        let xfer = {
            let pcie = &mut *ctx.pcie;
            let sched = &mut *ctx.sched;
            pcie.request(ctx.now, bytes, XferDirection::DeviceToHost, &mut |d, e| {
                sched(d, SsdEvent::Pcie(e))
            })
        };
        self.dma_out.insert(xfer, request);
    }

    /// Finalises an entry after its result DMA: complete the read command,
    /// record the report, deallocate (returning its buffers to the pool).
    fn finish(&mut self, ctx: &mut DeviceCtx<'_>, request: u64) {
        let entry = self.entries.remove(&request).expect("entry exists");
        let (qid, cid, _) = entry.read_cmd.expect("read command pending");
        let block_bytes = ctx.ftl.page_bytes();
        let results = entry.results.as_slice();
        let mut data = ctx.take_buffer(SlsConfig::padded_result_len(results.len(), block_bytes));
        SlsConfig::encode_results_into(results, block_bytes, &mut data);
        ctx.complete(qid, NvmeCompletion::success(cid, Some(data)));

        let flash_span = entry.t_last_page.saturating_since(entry.t_processed);
        self.stats.sls_requests.inc();
        self.stats.record_report(&SlsRequestReport {
            config_write: entry.t_config_written.saturating_since(entry.t_arrive),
            config_process: entry.config_process,
            translation: entry.translation,
            merge: entry.merge,
            flash_read: flash_span.saturating_sub(entry.translation),
            total: entry.t_ready.saturating_since(entry.t_arrive),
            pages: entry.page_work.len(),
            cache_hits: entry.cache_hits,
            lookups: entry.lookups,
        });
        self.recycle(entry);
    }
}

impl NdpEngine for NdpSlsEngine {
    fn on_ndp_command(&mut self, ctx: &mut DeviceCtx<'_>, qid: u16, cmd: NvmeCommand) {
        let (table_base, request) = NvmeCommand::ndp_slba_decode(cmd.slba, self.cfg.table_align);
        match cmd.opcode {
            NvmeOpcode::Write => {
                // Step 1a: allocate an entry and DMA the configuration.
                let Some(payload) = cmd.payload else {
                    ctx.complete(
                        qid,
                        NvmeCompletion::error(cmd.cid, NvmeStatus::InvalidField),
                    );
                    return;
                };
                if self.entries.len() >= self.cfg.max_entries || self.entries.contains_key(&request)
                {
                    ctx.complete(
                        qid,
                        NvmeCompletion::error(cmd.cid, NvmeStatus::InternalError),
                    );
                    return;
                }
                let bytes = payload.len();
                let bufs = self.buf_pool.pop().unwrap_or_default();
                self.entries.insert(
                    request,
                    SlsEntry {
                        qid,
                        write_cid: cmd.cid,
                        table_base,
                        raw_config: Some(payload),
                        pairs_buf: bufs.pairs,
                        cfg: None,
                        work_items: bufs.work_items,
                        page_work: bufs.page_work,
                        pages_pending: 0,
                        results: bufs.results,
                        partials: bufs.partials,
                        partial_pages: bufs.partial_pages,
                        needs_merge: false,
                        results_ready: false,
                        failed: false,
                        read_cmd: None,
                        t_arrive: ctx.now,
                        t_config_written: ctx.now,
                        t_processed: ctx.now,
                        t_last_page: ctx.now,
                        t_ready: ctx.now,
                        config_process: SimDuration::ZERO,
                        translation: SimDuration::ZERO,
                        merge: SimDuration::ZERO,
                        cache_hits: 0,
                        lookups: 0,
                    },
                );
                let xfer = {
                    let pcie = &mut *ctx.pcie;
                    let sched = &mut *ctx.sched;
                    pcie.request(ctx.now, bytes, XferDirection::HostToDevice, &mut |d, e| {
                        sched(d, SsdEvent::Pcie(e))
                    })
                };
                self.dma_in.insert(xfer, request);
            }
            NvmeOpcode::Read => {
                // Step 1b: associate the result-read with its entry.
                let Some(entry) = self.entries.get_mut(&request) else {
                    ctx.complete(
                        qid,
                        NvmeCompletion::error(cmd.cid, NvmeStatus::InvalidField),
                    );
                    return;
                };
                if entry.table_base != table_base || entry.read_cmd.is_some() {
                    ctx.complete(
                        qid,
                        NvmeCompletion::error(cmd.cid, NvmeStatus::InvalidField),
                    );
                    return;
                }
                entry.read_cmd = Some((qid, cmd.cid, cmd.nlb));
                self.maybe_finish(ctx, request);
            }
        }
    }

    fn on_ftl_outcome(&mut self, ctx: &mut DeviceCtx<'_>, outcome: &FtlOutcome) -> bool {
        match outcome {
            FtlOutcome::FwTaskDone { tag } => {
                let Some(job) = self.fw_jobs.remove(&tag.0) else {
                    return false;
                };
                match job {
                    FwJob::ConfigProcess { request } => {
                        self.process_config(ctx, request);
                    }
                    FwJob::Translate {
                        request,
                        widx,
                        data,
                        duration,
                        engine,
                    } => {
                        self.apply_translation(ctx, request, widx, &data, duration, engine);
                        // Last consumer of this page image: offer it back
                        // to the FTL's pool (a no-op while the page cache
                        // still holds it).
                        ctx.ftl.recycle_page_image(data);
                    }
                    FwJob::Merge { request } => {
                        self.apply_merge(ctx, request);
                    }
                }
                true
            }
            FtlOutcome::ReadDone { req, data, .. } => {
                let Some((request, widx)) = self.reads.remove(req) else {
                    return false;
                };
                self.start_translation(ctx, request, widx, data.clone());
                true
            }
            FtlOutcome::ReadFailed { req, .. } => {
                let Some((request, _widx)) = self.reads.remove(req) else {
                    return false;
                };
                let entry = self.entries.get_mut(&request).expect("entry exists");
                entry.failed = true;
                entry.pages_pending -= 1;
                entry.t_last_page = ctx.now;
                self.maybe_finish(ctx, request);
                true
            }
            FtlOutcome::WriteDone { .. } => false,
        }
    }

    fn on_pcie_done(&mut self, ctx: &mut DeviceCtx<'_>, xfer: XferId) -> bool {
        if let Some(request) = self.dma_in.remove(&xfer) {
            // Config landed on the device: charge config processing.
            let entry = self.entries.get_mut(&request).expect("entry exists");
            entry.t_config_written = ctx.now;
            let pairs = entry
                .raw_config
                .as_ref()
                .map(|raw| raw.len().saturating_sub(32) / 12)
                .unwrap_or(0);
            let dur = self.cfg.config_process_time(pairs);
            entry.config_process = dur;
            let tag = self.alloc_tag(FwJob::ConfigProcess { request });
            Self::charge_fw(ctx, dur, tag);
            return true;
        }
        if let Some(request) = self.dma_out.remove(&xfer) {
            self.finish(ctx, request);
            return true;
        }
        false
    }

    fn idle(&self) -> bool {
        self.entries.is_empty()
    }
}
