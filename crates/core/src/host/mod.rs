//! The host side of RecSSD: the simulated host system and its SLS
//! operator implementations.

mod system;

pub use system::{OpId, OpKind, OpResult, SlsOptions, System};
