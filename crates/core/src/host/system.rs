//! The simulated host: worker pools, operator state machines and the
//! global event loop tying host and device together.
//!
//! The paper's host runtime (§4.2) uses "a threadpool of SLS workers to
//! fetch embeddings and feed post-SLS embeddings to neural network
//! workers", with the SLS worker count matched to the driver's I/O queues.
//! [`System`] reproduces that: SLS operators occupy an *SLS worker* (a
//! UNVMe polling thread bound to an NVMe queue pair) for their duration;
//! dense compute occupies an *NN worker*. Operators are state machines
//! advanced by device completions and host-compute timer events, all on
//! one deterministic virtual clock.

use std::collections::VecDeque;
use std::sync::Arc;

use recssd_cache::{LruCache, StaticPartition};
use recssd_embedding::{LookupBatch, RowScratch, TableId, TableImage};
use recssd_nvme::{NvmeCommand, NvmeCompletion, NvmeStatus};
use recssd_obs::trace::track;
use recssd_obs::{SpanId, Tracer};
use recssd_sim::{EventQueue, FxHashMap, SimDuration, SimTime};
use recssd_ssd::{SsdDevice, SsdEvent};

use crate::ndp::NdpSlsEngine;
use crate::{DeviceError, RecSsdConfig, SlsConfig, SlsOutput, TableRegistry};

/// Largest number of recycled result buffers the host keeps around.
const OUT_POOL_CAP: usize = 256;

/// Largest number of recycled NDP pair-list buffers the host keeps.
const PAIR_POOL_CAP: usize = 256;

/// Identifier of a submitted operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(u64);

/// Per-operator options for the SSD-backed SLS implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlsOptions {
    /// Outstanding NVMe reads a baseline SLS keeps in flight. The paper's
    /// *naive* configuration (Fig. 9, no pipelining) uses a small window;
    /// the optimised configuration (Fig. 10) uses a deep one.
    pub io_concurrency: usize,
    /// Baseline only: consult/fill the host-DRAM LRU vector cache
    /// (enable per table with [`System::enable_host_cache`]).
    pub use_host_cache: bool,
    /// NDP only: split hot rows to host DRAM via the static partition
    /// (install per table with [`System::set_partition`]).
    pub use_partition: bool,
    /// Baseline only: coalesce contiguous (and bridgeable) page runs
    /// into multi-block reads per [`crate::HostConfig`]'s
    /// `read_coalesce_limit`/`read_bridge_limit`. The paper's *naive*
    /// configuration issues one read per embedding, so
    /// [`SlsOptions::naive`] turns this off.
    pub coalesce_reads: bool,
}

impl Default for SlsOptions {
    fn default() -> Self {
        SlsOptions {
            io_concurrency: 16,
            use_host_cache: false,
            use_partition: false,
            coalesce_reads: true,
        }
    }
}

impl SlsOptions {
    /// The paper's naive configuration: shallow I/O window, no caching,
    /// one read command per distinct page.
    pub fn naive() -> Self {
        SlsOptions {
            io_concurrency: 3,
            use_host_cache: false,
            use_partition: false,
            coalesce_reads: false,
        }
    }
}

/// An operator to run on the simulated host.
#[derive(Debug, Clone)]
pub enum OpKind {
    /// SLS with the table in host DRAM (the Fig. 5/6 DRAM baseline).
    DramSls {
        /// Target table.
        table: TableId,
        /// The lookups.
        batch: LookupBatch,
    },
    /// SLS over conventional NVMe reads with host-side accumulation
    /// (the COTS-SSD baseline).
    BaselineSls {
        /// Target table.
        table: TableId,
        /// The lookups.
        batch: LookupBatch,
        /// I/O and caching options.
        opts: SlsOptions,
    },
    /// The RecSSD offload: config-write + result-read NDP commands.
    NdpSls {
        /// Target table.
        table: TableId,
        /// The lookups.
        batch: LookupBatch,
        /// Partitioning options.
        opts: SlsOptions,
    },
    /// Dense host compute (FC layers, feature interactions): timed by the
    /// host cost model, no functional output.
    HostCompute {
        /// Floating-point operations.
        flops: f64,
        /// Bytes streamed from memory.
        bytes: f64,
    },
}

impl OpKind {
    /// Convenience constructor for [`OpKind::DramSls`].
    pub fn dram_sls(table: TableId, batch: LookupBatch) -> Self {
        OpKind::DramSls { table, batch }
    }

    /// Convenience constructor for [`OpKind::BaselineSls`].
    pub fn baseline_sls(table: TableId, batch: LookupBatch, opts: SlsOptions) -> Self {
        OpKind::BaselineSls { table, batch, opts }
    }

    /// Convenience constructor for [`OpKind::NdpSls`].
    pub fn ndp_sls(table: TableId, batch: LookupBatch, opts: SlsOptions) -> Self {
        OpKind::NdpSls { table, batch, opts }
    }

    /// Convenience constructor for [`OpKind::HostCompute`].
    pub fn host_compute(flops: f64, bytes: f64) -> Self {
        OpKind::HostCompute { flops, bytes }
    }

    fn pool(&self) -> PoolKind {
        match self {
            OpKind::HostCompute { .. } => PoolKind::Nn,
            _ => PoolKind::Sls,
        }
    }
}

/// Outcome of a finished operator.
#[derive(Debug, Clone)]
pub struct OpResult {
    /// SLS outputs (one flat vector block, one row per output slot);
    /// `None` for host compute.
    pub outputs: Option<SlsOutput>,
    /// The device-side failure that aborted the operator, if any. With an
    /// error present, `outputs` holds a partial (incorrect) accumulation
    /// and must not be served — retry, fall back or flag the rows missing.
    pub error: Option<DeviceError>,
    /// When the operator was submitted.
    pub submitted: SimTime,
    /// When it acquired a worker and began executing.
    pub started: SimTime,
    /// When it completed.
    pub finished: SimTime,
}

impl OpResult {
    /// Submission-to-completion latency (includes queueing for a worker).
    pub fn latency(&self) -> SimDuration {
        self.finished.saturating_since(self.submitted)
    }

    /// Execution time excluding worker queueing.
    pub fn service_time(&self) -> SimDuration {
        self.finished.saturating_since(self.started)
    }

    /// `true` when the operator completed without a device-side failure.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PoolKind {
    Sls,
    Nn,
}

#[derive(Debug)]
struct Pool {
    free: Vec<usize>,
    ready: VecDeque<OpId>,
    bound: Vec<Option<OpId>>,
}

impl Pool {
    fn new(workers: usize) -> Self {
        Pool {
            free: (0..workers).rev().collect(),
            ready: VecDeque::new(),
            bound: vec![None; workers],
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SysEvent {
    Dev(SsdEvent),
    Worker { pool: PoolKind, worker: usize },
}

/// One distinct flash page of a baseline op: its work items are
/// `items[start..start + len]`.
#[derive(Debug, Clone, Copy, Default)]
struct PageRun {
    page: u64,
    start: u32,
    len: u32,
}

/// One NVMe read of a baseline op: the wanted pages of
/// `runs[first..first + count]` plus any bridged gap pages between them,
/// fetched with a single `span`-block command so the per-command firmware
/// charge amortises across the run.
#[derive(Debug, Clone, Copy, Default)]
struct CmdRun {
    first: u32,
    count: u32,
    /// Blocks the command covers: last wanted page − first + 1.
    span: u32,
}

/// Pooled per-op buffers of the baseline I/O planner, recycled across
/// operators so steady-state baseline requests allocate nothing for them.
#[derive(Debug, Default)]
struct BaseIoBufs {
    /// Staging triples `(page, offset, slot)` sorted by page.
    stage: Vec<(u64, u32, u32)>,
    /// One record per distinct page, ascending page order.
    runs: Vec<PageRun>,
    /// `(byte offset, result slot)` items grouped by `runs`.
    items: Vec<(u32, u32)>,
    /// One record per NVMe read command: a maximal (capped) group of
    /// consecutive `runs` whose pages are contiguous.
    cmds: Vec<CmdRun>,
    outstanding: FxHashMap<u16, usize>, // cid → index into `cmds`
    backlog: VecDeque<usize>,
    data: FxHashMap<usize, Vec<u8>>,
}

impl BaseIoBufs {
    fn clear(&mut self) {
        self.stage.clear();
        self.runs.clear();
        self.items.clear();
        self.cmds.clear();
        self.outstanding.clear();
        self.backlog.clear();
        self.data.clear();
    }
}

#[derive(Debug)]
struct BaseIo {
    bufs: BaseIoBufs,
    next: usize,
    accum_current: Option<(usize, Vec<u8>)>,
    cmds_done: usize,
    io_concurrency: usize,
    use_host_cache: bool,
}

#[derive(Debug)]
struct NdpPlan {
    cold_cfg: SlsConfig,
    hot_pairs: Vec<(u64, u32)>,
    request_id: u64,
    result_data: Option<Vec<u8>>,
}

// The BaseIo variant is big, but boxing it would re-introduce a per-op
// heap allocation on the steady-state baseline path that the pooled
// planner buffers exist to avoid.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Phase {
    Pending,
    Compute,
    BasePrep,
    BaseIo(BaseIo),
    NdpPrep,
    NdpHotGather,
    NdpAwaitWrite,
    NdpAwaitRead,
    NdpMerge,
}

#[derive(Debug)]
struct Op {
    kind: OpKind,
    phase: Phase,
    pool: PoolKind,
    worker: Option<usize>,
    deps_left: usize,
    dependents: Vec<OpId>,
    submitted: SimTime,
    started: SimTime,
    outputs: SlsOutput,
    ndp: Option<NdpPlan>,
    qid: u16,
    /// First device-side failure observed for this op (poisons it: no
    /// further I/O is issued and the result carries the error).
    failed: Option<DeviceError>,
    /// This op's trace span, pre-allocated at submission so phase spans
    /// can reference it before it is emitted (at completion).
    /// `SpanId::NONE` when tracing is off.
    span: SpanId,
    /// Caller-provided parent for the op span (a serving-layer sub-batch
    /// span, via [`System::submit_traced`]).
    span_parent: SpanId,
    /// When the op's current traced phase began (queueing counts as the
    /// first phase); advanced by each emitted phase span.
    phase_started: SimTime,
}

/// The simulated host + device system. See the [crate docs](crate) for a
/// quickstart.
#[derive(Debug)]
pub struct System {
    cfg: RecSsdConfig,
    dev: SsdDevice<NdpSlsEngine>,
    q: EventQueue<SysEvent>,
    sls: Pool,
    nn: Pool,
    ops: FxHashMap<OpId, Op>,
    next_op: u64,
    next_cid: Vec<u16>,
    pending_cmd: FxHashMap<(u16, u16), OpId>,
    registry: TableRegistry,
    host_caches: FxHashMap<u32, LruCache<u64, Arc<[f32]>>>,
    partitions: FxHashMap<u32, StaticPartition>,
    partition_stats: FxHashMap<u32, recssd_cache::HitStats>,
    next_request: u64,
    results: FxHashMap<OpId, OpResult>,
    /// Free-list of recycled flat result buffers (see
    /// [`System::recycle_outputs`]).
    out_pool: Vec<SlsOutput>,
    /// Free-list of recycled baseline I/O planner buffers.
    baseio_pool: Vec<BaseIoBufs>,
    /// Free-list of recycled NDP pair-list buffers (plan staging,
    /// hot/cold partitions).
    pair_pool: Vec<Vec<(u64, u32)>>,
    /// Reused completion-drain scratch.
    completions: Vec<(u16, NvmeCompletion)>,
    /// Reused encode/decode scratch for host-DRAM row gathers.
    row_scratch: RowScratch,
    /// Sim-time span tracer for host-side op phases (disabled by default;
    /// see [`System::set_tracer`]).
    tracer: Tracer,
}

// A shard `System` must be steppable on a worker thread: all interior
// state is owned or `Send` (the tracer's sink is `Arc<Mutex<_>>`). The
// parallel serving stepper depends on this bound.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<System>()
};

impl System {
    /// Builds a system: device + NDP engine + host model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: RecSsdConfig) -> Self {
        cfg.validate();
        let dev = SsdDevice::with_engine(cfg.ssd.clone(), NdpSlsEngine::new(cfg.ndp.clone()));
        let io_queues = cfg.ssd.io_queues;
        System {
            dev,
            q: EventQueue::new(),
            sls: Pool::new(cfg.host.sls_workers),
            nn: Pool::new(cfg.host.nn_workers),
            ops: FxHashMap::default(),
            next_op: 0,
            next_cid: vec![0; io_queues],
            pending_cmd: FxHashMap::default(),
            registry: TableRegistry::new(cfg.ndp.table_align),
            host_caches: FxHashMap::default(),
            partitions: FxHashMap::default(),
            partition_stats: FxHashMap::default(),
            next_request: 0,
            results: FxHashMap::default(),
            out_pool: Vec::new(),
            baseio_pool: Vec::new(),
            pair_pool: Vec::new(),
            completions: Vec::new(),
            row_scratch: RowScratch::default(),
            tracer: Tracer::disabled(),
            cfg,
        }
    }

    /// Installs a sim-time span tracer. The system emits host-side op
    /// phases on the tracer's pid at [`track::TID_DEVICE`], and forwards
    /// the tracer to the FTL, whose firmware and flash spans land on
    /// [`track::TID_FW`] / [`track::TID_FLASH`] of the same pid. Pass
    /// [`Tracer::disabled`] to turn tracing back off.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.dev.ftl_mut().set_tracer(tracer.clone());
        self.tracer = tracer.with_tid(track::TID_DEVICE);
    }

    /// Resets every statistic this system owns, across the whole stack:
    /// device command counters, FTL counters and cache hit stats, flash
    /// array counters and latency histograms, fault-plan fire counts
    /// (injection streams are untouched, preserving deterministic
    /// replay), host LRU cache stats and partition stats. Table contents,
    /// mappings and the virtual clock are unaffected.
    pub fn reset_stats(&mut self) {
        self.dev.reset_stats();
        self.reset_host_stats();
    }

    /// Advances the idle system's virtual clock to `to` (no-op if the
    /// clock is already there or past it). A serving runtime that owns
    /// several systems uses this to re-anchor an idle shard to the global
    /// arrival instant before submitting work, so per-shard timestamps
    /// stay on one shared timeline.
    ///
    /// # Panics
    ///
    /// Panics if operators are still in flight (use
    /// [`System::run_until`] to merge clocks with work outstanding).
    pub fn advance_clock(&mut self, to: SimTime) {
        assert!(
            self.ops.is_empty(),
            "advance_clock requires an idle system (operators in flight)"
        );
        self.q.advance_to(to);
    }

    /// Processes every pending event up to and including `to`, then
    /// advances the clock to exactly `to` — the non-asserting clock-merge
    /// path that lets a caller keep several operators in flight while
    /// staying on an external timeline. Unlike [`System::advance_clock`]
    /// this is valid mid-operator: work scheduled past `to` stays
    /// pending, and finished operators become visible to
    /// [`System::try_take_result`].
    ///
    /// Calling with `to` in the past (relative to the system clock) only
    /// processes events at or before `to` that are already due, which is
    /// a no-op for a causally driven caller.
    pub fn run_until(&mut self, to: SimTime) {
        while self.q.peek_time().is_some_and(|t| t <= to) {
            let (now, ev) = self.q.pop().expect("peeked a pending event");
            self.handle_event(now, ev);
        }
        self.q.advance_to(to);
    }

    /// Timestamp of the system's next internal event, if any — what an
    /// external co-simulation loop uses to schedule its next visit.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.q.peek_time()
    }

    /// Conservative-parallel **lookahead**: the minimum virtual time
    /// between an external stimulus to this system (an operator
    /// submission) and the earliest instant that stimulus can produce an
    /// externally visible effect (a completion the caller could react
    /// to).
    ///
    /// Every submission first pays the host software command cost
    /// (`HostConfig::sw_cmd_ns`) and the fixed per-operator overhead
    /// (`HostConfig::op_overhead_ns`) before any device work can finish,
    /// so a parallel stepper may advance each shard `System`
    /// independently through any window shorter than this horizon: work
    /// submitted at or after the window start cannot complete — and
    /// therefore cannot trigger a cross-shard reaction — inside the
    /// window. This is the lookahead contract the serving layer's
    /// `ExecMode::Parallel` stepper relies on; it pairs with
    /// [`System::run_until`] (advance to a bound) and
    /// [`System::next_event_time`] (when to visit next).
    ///
    /// Configs where this is zero admit no lookahead (the window
    /// degenerates to one event at a time); the serving layer rejects
    /// them for parallel execution.
    pub fn sync_horizon(&self) -> SimDuration {
        SimDuration::from_ns(self.cfg.host.sw_cmd_ns + self.cfg.host.op_overhead_ns)
    }

    /// Number of operators currently submitted and unfinished.
    pub fn in_flight_ops(&self) -> usize {
        self.ops.len()
    }

    /// The system configuration.
    pub fn config(&self) -> &RecSsdConfig {
        &self.cfg
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.q.now()
    }

    /// The simulated device (statistics, FTL access).
    pub fn device(&self) -> &SsdDevice<NdpSlsEngine> {
        &self.dev
    }

    /// Mutable device access (cache drops, statistic resets).
    pub fn device_mut(&mut self) -> &mut SsdDevice<NdpSlsEngine> {
        &mut self.dev
    }

    /// Installs (or clears) a deterministic fault-injection plan on the
    /// device's flash array. Pass `None` to disable injection. Plans with
    /// all rates zero and no brownout windows are bit-identical (results,
    /// timings, statistics) to no plan at all.
    pub fn set_fault_plan(&mut self, plan: Option<crate::FaultPlan>) {
        self.dev.set_fault_plan(plan);
    }

    /// Statistics of the installed fault plan (faults fired so far), if a
    /// plan is installed.
    pub fn fault_stats(&self) -> Option<crate::FaultStats> {
        self.dev.ftl().fault_plan().map(|p| p.stats().clone())
    }

    /// The table registry.
    pub fn registry(&self) -> &TableRegistry {
        &self.registry
    }

    /// Registers a table and preloads its image onto the device.
    pub fn add_table(&mut self, image: TableImage) -> TableId {
        let id = self.registry.register(image);
        self.registry.bind_to_device(id, &mut self.dev);
        id
    }

    /// Re-binds `id`'s registry slot to a new image (placement refresh:
    /// the repacked table reuses its alignment slot instead of consuming
    /// a fresh one). The region is re-preloaded wide enough to shadow
    /// whatever the old image covered, and every host- or device-side
    /// structure keyed by the old image's row space is flushed: stale
    /// FTL-cached pages are evicted, the table's host LRU vector cache
    /// (if enabled) is cleared, and any installed static partition is
    /// removed — its hot ids referred to the old row space, so the caller
    /// must install a fresh one if partitioning is still wanted.
    ///
    /// The caller must guarantee no in-flight operator still reads the
    /// old binding — the serving layer's plan double-buffering retires a
    /// slot only once every operator against it has drained.
    pub fn replace_table(&mut self, id: TableId, image: TableImage) {
        let old_pages = self.registry.replace(id, image);
        let b = self.registry.binding(id);
        let pages = b.image.pages().max(old_pages);
        self.dev.preload(
            recssd_ftl::Lpn(b.base_lpn),
            pages,
            std::sync::Arc::new(recssd_embedding::TableImageOracle::new(
                b.image.clone(),
                b.base_lpn,
            )),
        );
        self.dev
            .ftl_mut()
            .invalidate_range(recssd_ftl::Lpn(b.base_lpn), pages);
        if let Some(cache) = self.host_caches.get_mut(&id.0) {
            cache.clear();
        }
        self.partitions.remove(&id.0);
    }

    /// Enables the baseline's host-DRAM LRU vector cache for `table` with
    /// the given entry capacity (§5 uses 2 K entries per table).
    pub fn enable_host_cache(&mut self, table: TableId, entries: usize) {
        self.host_caches.insert(table.0, LruCache::new(entries));
    }

    /// Hit statistics of the host LRU cache for `table`, if enabled.
    pub fn host_cache_stats(&self, table: TableId) -> Option<recssd_cache::HitStats> {
        self.host_caches.get(&table.0).map(|c| c.stats())
    }

    /// Installs a static hot-row partition for `table` (used by NDP ops
    /// with [`SlsOptions::use_partition`]).
    pub fn set_partition(&mut self, table: TableId, partition: StaticPartition) {
        self.partitions.insert(table.0, partition);
    }

    /// Hit statistics of the static partition for `table` (a "hit" is a
    /// lookup served from host DRAM) — the percentages annotated above
    /// the Fig. 10(d–f) bars.
    pub fn partition_stats(&self, table: TableId) -> Option<recssd_cache::HitStats> {
        self.partition_stats.get(&table.0).copied()
    }

    /// Resets host-side cache and partition statistics (between warm-up
    /// and measurement phases).
    pub fn reset_host_stats(&mut self) {
        for c in self.host_caches.values_mut() {
            c.reset_stats();
        }
        self.partition_stats.clear();
    }

    /// Submits an operator with no dependencies.
    pub fn submit(&mut self, kind: OpKind) -> OpId {
        self.submit_after(kind, &[])
    }

    /// Submits an operator with no dependencies, parenting its trace
    /// spans under `parent` (e.g. a serving-layer sub-batch span).
    /// Identical to [`System::submit`] when tracing is disabled.
    pub fn submit_traced(&mut self, kind: OpKind, parent: SpanId) -> OpId {
        self.submit_inner(kind, &[], parent)
    }

    /// Submits an operator that starts only after `deps` complete.
    ///
    /// # Panics
    ///
    /// Panics if a dependency id is unknown.
    pub fn submit_after(&mut self, kind: OpKind, deps: &[OpId]) -> OpId {
        self.submit_inner(kind, deps, SpanId::NONE)
    }

    fn submit_inner(&mut self, kind: OpKind, deps: &[OpId], span_parent: SpanId) -> OpId {
        let id = OpId(self.next_op);
        self.next_op += 1;
        let pool = kind.pool();
        let mut deps_left = 0;
        for &d in deps {
            if self.results.contains_key(&d) {
                continue; // already finished
            }
            let dep = self.ops.get_mut(&d).expect("unknown dependency");
            dep.dependents.push(id);
            deps_left += 1;
        }
        // SLS ops reuse a pooled result buffer; host compute carries none.
        let outputs = match &kind {
            OpKind::HostCompute { .. } => SlsOutput::default(),
            _ => self.out_pool.pop().unwrap_or_default(),
        };
        let op = Op {
            kind,
            phase: Phase::Pending,
            pool,
            worker: None,
            deps_left,
            dependents: Vec::new(),
            submitted: self.q.now(),
            started: self.q.now(),
            outputs,
            ndp: None,
            qid: 0,
            failed: None,
            span: self.tracer.alloc_id(),
            span_parent,
            phase_started: self.q.now(),
        };
        self.ops.insert(id, op);
        if deps_left == 0 {
            self.pool_mut(pool).ready.push_back(id);
            self.dispatch(pool);
        }
        id
    }

    /// The result of a finished operator.
    ///
    /// # Panics
    ///
    /// Panics if the operator has not completed (call
    /// [`System::run_until_idle`] first).
    pub fn result(&self, op: OpId) -> &OpResult {
        self.results
            .get(&op)
            .expect("operator not finished; run_until_idle() first")
    }

    /// Removes and returns the result of a finished operator, so its
    /// buffer can be handed back via [`System::recycle_outputs`] once
    /// consumed — the steady-state serving idiom that keeps the host side
    /// allocation-free across requests.
    ///
    /// # Panics
    ///
    /// Panics if the operator has not completed.
    pub fn take_result(&mut self, op: OpId) -> OpResult {
        self.results
            .remove(&op)
            .expect("operator not finished; run_until_idle() first")
    }

    /// Non-panicking completion poll: removes and returns the result if
    /// `op` has finished, `None` while it is still in flight. The polling
    /// companion of [`System::run_until`] for callers tracking multiple
    /// outstanding operators without a single drain point.
    pub fn try_take_result(&mut self, op: OpId) -> Option<OpResult> {
        self.results.remove(&op)
    }

    /// Returns a consumed result buffer to the free-list pool; the next
    /// submitted SLS operator reuses it instead of allocating.
    pub fn recycle_outputs(&mut self, outputs: SlsOutput) {
        if self.out_pool.len() < OUT_POOL_CAP {
            self.out_pool.push(outputs);
        }
    }

    /// Drives the event loop until nothing remains in flight.
    ///
    /// # Panics
    ///
    /// Panics if operators are still pending when events run out (a
    /// dependency cycle or an operator stuck waiting).
    pub fn run_until_idle(&mut self) {
        while let Some((now, ev)) = self.q.pop() {
            self.handle_event(now, ev);
        }
        assert!(
            self.ops.is_empty(),
            "operators stuck with no pending events: {:?}",
            self.ops.keys().collect::<Vec<_>>()
        );
        assert!(self.dev.idle(), "device busy with no pending events");
    }

    fn handle_event(&mut self, now: SimTime, ev: SysEvent) {
        match ev {
            SysEvent::Dev(dev_ev) => {
                {
                    let Self { dev, q, .. } = self;
                    dev.handle(now, dev_ev, &mut |d, e| q.push_after(d, SysEvent::Dev(e)));
                }
                self.poll_completions(now);
            }
            SysEvent::Worker { pool, worker } => {
                self.on_worker_event(now, pool, worker);
            }
        }
    }

    fn pool_mut(&mut self, pool: PoolKind) -> &mut Pool {
        match pool {
            PoolKind::Sls => &mut self.sls,
            PoolKind::Nn => &mut self.nn,
        }
    }

    /// Assigns free workers to ready operators.
    fn dispatch(&mut self, pool: PoolKind) {
        loop {
            let now = self.q.now();
            let p = self.pool_mut(pool);
            let (Some(&_), Some(_)) = (p.free.last(), p.ready.front()) else {
                return;
            };
            let worker = p.free.pop().expect("checked");
            let id = p.ready.pop_front().expect("checked");
            p.bound[worker] = Some(id);
            let op = self.ops.get_mut(&id).expect("ready op exists");
            op.worker = Some(worker);
            op.started = now;
            op.qid = (worker % self.cfg.ssd.io_queues) as u16;
            self.trace_phase(id, "op:queue", now);
            self.start_op(now, id);
        }
    }

    /// Charges host compute on the op's worker; the continuation runs at
    /// the matching [`SysEvent::Worker`].
    fn charge(&mut self, op: OpId, dur: SimDuration) {
        let o = &self.ops[&op];
        let (pool, worker) = (o.pool, o.worker.expect("op holds a worker"));
        self.q.push_after(dur, SysEvent::Worker { pool, worker });
    }

    /// Emits a phase span `[op.phase_started, now]` parented to the op's
    /// span, then restarts the phase clock. No-op when tracing is off.
    fn trace_phase(&mut self, id: OpId, name: &'static str, now: SimTime) {
        if !self.tracer.enabled() {
            return;
        }
        let op = self.ops.get_mut(&id).expect("op exists");
        if op.span.is_some() {
            self.tracer.span(name, op.phase_started, now, op.span);
        }
        op.phase_started = now;
    }

    fn host(&self) -> &crate::HostConfig {
        &self.cfg.host
    }

    fn dram_time(&self, bytes: f64) -> SimDuration {
        SimDuration::from_secs_f64(bytes / self.host().dram_bytes_per_sec)
    }

    fn start_op(&mut self, _now: SimTime, id: OpId) {
        let host = self.host().clone();
        let op = self.ops.get_mut(&id).expect("op exists");
        match &op.kind {
            OpKind::DramSls { table, batch } => {
                let image = self.registry.binding(*table).image.clone();
                let lookups = batch.total_lookups();
                let bytes = lookups as f64 * image.table().spec().row_bytes() as f64
                    + (batch.outputs() * image.table().spec().dim * 4) as f64;
                // Functional result: the golden reference, accumulated
                // straight into the pooled flat buffer through the
                // system-owned row scratch (no per-operator allocation).
                op.outputs.reset(batch.outputs(), image.table().spec().dim);
                recssd_embedding::sls_reference_with(
                    image.table(),
                    batch,
                    &mut self.row_scratch,
                    op.outputs.as_mut_slice(),
                );
                op.phase = Phase::Compute;
                let dur =
                    SimDuration::from_ns(host.op_overhead_ns + host.per_lookup_ns * lookups as u64)
                        + self.dram_time(bytes);
                self.charge(id, dur);
            }
            OpKind::HostCompute { flops, bytes } => {
                let compute = flops / host.gflops;
                let memory = bytes / host.dram_bytes_per_sec;
                op.phase = Phase::Compute;
                let dur = SimDuration::from_ns(host.op_overhead_ns)
                    + SimDuration::from_secs_f64(compute.max(memory));
                self.charge(id, dur);
            }
            OpKind::BaselineSls { batch, .. } => {
                let lookups = batch.total_lookups();
                op.phase = Phase::BasePrep;
                let dur =
                    SimDuration::from_ns(host.op_overhead_ns + host.per_lookup_ns * lookups as u64);
                self.charge(id, dur);
            }
            OpKind::NdpSls { batch, .. } => {
                let lookups = batch.total_lookups();
                op.phase = Phase::NdpPrep;
                let dur =
                    SimDuration::from_ns(host.op_overhead_ns + host.per_lookup_ns * lookups as u64);
                self.charge(id, dur);
            }
        }
    }

    fn on_worker_event(&mut self, now: SimTime, pool: PoolKind, worker: usize) {
        let id = self.pool_mut(pool).bound[worker].expect("worker event without bound op");
        let phase = std::mem::replace(
            &mut self.ops.get_mut(&id).expect("op").phase,
            Phase::Pending,
        );
        match phase {
            Phase::Compute => self.finish_op(now, id),
            Phase::BasePrep => self.baseline_plan(now, id),
            Phase::BaseIo(io) => self.baseline_accum_done(now, id, io),
            Phase::NdpPrep => self.ndp_plan(now, id),
            Phase::NdpHotGather => {
                self.trace_phase(id, "ndp:gather", now);
                self.ndp_send_write(now, id)
            }
            Phase::NdpMerge => self.ndp_merge_done(now, id),
            Phase::Pending | Phase::NdpAwaitWrite | Phase::NdpAwaitRead => {
                unreachable!("worker event in a waiting phase")
            }
        }
    }

    // ----- baseline SLS -----

    fn baseline_plan(&mut self, now: SimTime, id: OpId) {
        self.trace_phase(id, "base:plan", now);
        // Disjoint-field borrows: the batch stays inside the op (no
        // clone) while the caches and flat accumulator are consulted.
        let Self {
            ops,
            registry,
            host_caches,
            baseio_pool,
            cfg,
            ..
        } = self;
        let op = ops.get_mut(&id).expect("op");
        let OpKind::BaselineSls { table, batch, opts } = &op.kind else {
            unreachable!("phase/kind mismatch")
        };
        let (table, opts) = (*table, *opts);
        assert!(
            opts.io_concurrency >= 1 && opts.io_concurrency <= cfg.ssd.queue_depth,
            "io_concurrency must be within the queue depth"
        );
        let image = registry.binding(table).image.clone();
        let dim = image.table().spec().dim;
        op.outputs.reset(batch.outputs(), dim);
        let mut bufs = baseio_pool.pop().unwrap_or_default();
        bufs.clear();
        let cache = opts
            .use_host_cache
            .then(|| host_caches.get_mut(&table.0))
            .flatten();
        if let Some(cache) = cache {
            for (slot, ids) in batch.per_output().iter().enumerate() {
                for &row in ids {
                    if let Some(vec) = cache.get(&row) {
                        for (o, v) in op.outputs.row_mut(slot).iter_mut().zip(vec.iter()) {
                            *o += *v;
                        }
                    } else {
                        let (page, off) = image.page_of_row(row);
                        bufs.stage.push((page, off as u32, slot as u32));
                    }
                }
            }
        } else {
            for (slot, ids) in batch.per_output().iter().enumerate() {
                for &row in ids {
                    let (page, off) = image.page_of_row(row);
                    bufs.stage.push((page, off as u32, slot as u32));
                }
            }
        }
        if bufs.stage.is_empty() {
            baseio_pool.push(bufs);
            self.finish_op(now, id);
            return;
        }
        // Group by page into the flat run/item lists (in-place sort keeps
        // the planner allocation-free once the pooled buffers are warm).
        bufs.stage.sort_unstable();
        for &(page, off, slot) in &bufs.stage {
            match bufs.runs.last_mut() {
                Some(r) if r.page == page => r.len += 1,
                _ => bufs.runs.push(PageRun {
                    page,
                    start: bufs.items.len() as u32,
                    len: 1,
                }),
            }
            bufs.items.push((off, slot));
        }
        // Coalesce nearby pages into multi-block commands: runs are in
        // ascending page order, so one scan suffices. A run joins the
        // open command while the command stays within the span limit,
        // reading through up to `read_bridge_limit` unwanted pages to
        // reach it. Each command charges the serial firmware once for
        // its whole span.
        let (coalesce, bridge) = if opts.coalesce_reads {
            (
                cfg.host.read_coalesce_limit as u64,
                cfg.host.read_bridge_limit as u64,
            )
        } else {
            (1, 0)
        };
        for (i, r) in bufs.runs.iter().enumerate() {
            let joined = match bufs.cmds.last_mut() {
                Some(c) => {
                    let first_page = bufs.runs[c.first as usize].page;
                    let span = r.page - first_page + 1;
                    let gap = span - c.span as u64 - 1;
                    if span <= coalesce && gap <= bridge {
                        c.count += 1;
                        c.span = span as u32;
                        true
                    } else {
                        false
                    }
                }
                None => false,
            };
            if !joined {
                bufs.cmds.push(CmdRun {
                    first: i as u32,
                    count: 1,
                    span: 1,
                });
            }
        }
        let mut io = BaseIo {
            bufs,
            next: 0,
            accum_current: None,
            cmds_done: 0,
            io_concurrency: opts.io_concurrency,
            use_host_cache: opts.use_host_cache,
        };
        self.baseline_issue(now, id, &mut io);
        self.ops.get_mut(&id).expect("op").phase = Phase::BaseIo(io);
    }

    /// Issues (possibly multi-page) reads up to the concurrency window.
    fn baseline_issue(&mut self, now: SimTime, id: OpId, io: &mut BaseIo) {
        let table = match &self.ops[&id].kind {
            OpKind::BaselineSls { table, .. } => *table,
            _ => unreachable!("phase/kind mismatch"),
        };
        let base = self.registry.binding(table).base_lpn;
        let qid = self.ops[&id].qid;
        while io.bufs.outstanding.len() < io.io_concurrency && io.next < io.bufs.cmds.len() {
            let idx = io.next;
            io.next += 1;
            let cmd = io.bufs.cmds[idx];
            let page = io.bufs.runs[cmd.first as usize].page;
            let cid = self.alloc_cid(qid);
            io.bufs.outstanding.insert(cid, idx);
            self.pending_cmd.insert((qid, cid), id);
            self.submit_cmd(now, qid, NvmeCommand::read(cid, base + page, cmd.span));
        }
    }

    /// A read completion (one command, one or more pages) arrived for a
    /// baseline op.
    fn baseline_on_page(&mut self, now: SimTime, id: OpId, cid: u16, data: Vec<u8>) {
        let mut phase = std::mem::replace(
            &mut self.ops.get_mut(&id).expect("op").phase,
            Phase::Pending,
        );
        {
            let Phase::BaseIo(io) = &mut phase else {
                unreachable!("completion outside BaseIo phase")
            };
            let idx = io.bufs.outstanding.remove(&cid).expect("tracked command");
            io.bufs.data.insert(idx, data);
            io.bufs.backlog.push_back(idx);
            self.baseline_issue(now, id, io);
            if io.accum_current.is_none() {
                self.baseline_start_accum(id, io);
            }
        }
        self.ops.get_mut(&id).expect("op").phase = phase;
    }

    /// Starts the host-side completion-processing + accumulate charge for
    /// the next backlogged command (all of its pages fold in one charge:
    /// the per-command driver software cost amortises with coalescing
    /// exactly like the firmware cost does).
    fn baseline_start_accum(&mut self, id: OpId, io: &mut BaseIo) {
        let Some(idx) = io.bufs.backlog.pop_front() else {
            return;
        };
        let data = io.bufs.data.remove(&idx).expect("command data stored");
        let cmd = io.bufs.cmds[idx];
        let vectors: usize = io.bufs.runs[cmd.first as usize..(cmd.first + cmd.count) as usize]
            .iter()
            .map(|r| r.len as usize)
            .sum();
        let host = self.host();
        let table = match &self.ops[&id].kind {
            OpKind::BaselineSls { table, .. } => *table,
            _ => unreachable!("phase/kind mismatch"),
        };
        let row_bytes = self
            .registry
            .binding(table)
            .image
            .table()
            .spec()
            .row_bytes();
        let dur = SimDuration::from_ns(host.sw_cmd_ns + host.per_lookup_ns * vectors as u64)
            + self.dram_time((vectors * row_bytes) as f64);
        io.accum_current = Some((idx, data));
        self.charge(id, dur);
    }

    /// The accumulate charge finished: fold every page of the command
    /// into the flat outputs with the fused decode (no per-vector
    /// allocation; the host-cache fill path is the one place a vector is
    /// materialised, because the cache stores shared `Arc`s).
    fn baseline_accum_done(&mut self, now: SimTime, id: OpId, mut io: BaseIo) {
        let (idx, data) = io.accum_current.take().expect("accumulating a command");
        if self.ops[&id].failed.is_some() {
            // The op was poisoned while this charge was in flight: drop
            // the command instead of folding it, and finish once no reads
            // remain outstanding.
            self.dev.recycle_buffer(data);
            if io.bufs.outstanding.is_empty() {
                io.bufs.clear();
                self.baseio_pool.push(io.bufs);
                self.finish_op(now, id);
            } else {
                self.ops.get_mut(&id).expect("op").phase = Phase::BaseIo(io);
            }
            return;
        }
        let Self {
            ops,
            registry,
            host_caches,
            ..
        } = self;
        let op = ops.get_mut(&id).expect("op");
        let OpKind::BaselineSls { table, .. } = &op.kind else {
            unreachable!("phase/kind mismatch")
        };
        let table = *table;
        let image = &registry.binding(table).image;
        let spec = image.table().spec();
        let page_bytes = registry.binding(table).image.page_bytes();
        let cmd = io.bufs.cmds[idx];
        let use_cache = io.use_host_cache && host_caches.contains_key(&table.0);
        let first_page = io.bufs.runs[cmd.first as usize].page;
        for run in &io.bufs.runs[cmd.first as usize..(cmd.first + cmd.count) as usize] {
            // A wanted page sits at its distance from the command's first
            // page (bridged gap pages occupy their slots unused).
            let k = (run.page - first_page) as usize;
            let page = &data[k * page_bytes..(k + 1) * page_bytes];
            let work = &io.bufs.items[run.start as usize..(run.start + run.len) as usize];
            if use_cache {
                let cache = host_caches.get_mut(&table.0).expect("checked");
                for &(off, slot) in work {
                    let off = off as usize;
                    let mut dec = vec![0.0f32; spec.dim];
                    spec.quant.decode_into(&page[off..], &mut dec);
                    for (o, v) in op.outputs.row_mut(slot as usize).iter_mut().zip(&dec) {
                        *o += *v;
                    }
                    let row = run.page * image.rows_per_page() + (off / spec.row_bytes()) as u64;
                    cache.insert(row, dec.into());
                }
            } else {
                for &(off, slot) in work {
                    spec.quant.decode_accumulate(
                        &page[off as usize..],
                        op.outputs.row_mut(slot as usize),
                    );
                }
            }
        }
        // The command has been folded in; its transfer buffer goes back
        // to the device pool so a same-sized read reuses it.
        self.dev.recycle_buffer(data);
        io.cmds_done += 1;
        if io.bufs.backlog.is_empty()
            && io.bufs.outstanding.is_empty()
            && io.next == io.bufs.cmds.len()
        {
            debug_assert_eq!(io.cmds_done, io.bufs.cmds.len());
            self.baseio_pool.push(io.bufs);
            self.finish_op(now, id);
            return;
        }
        self.baseline_start_accum(id, &mut io);
        self.ops.get_mut(&id).expect("op").phase = Phase::BaseIo(io);
    }

    // ----- NDP SLS -----

    fn ndp_plan(&mut self, now: SimTime, id: OpId) {
        self.trace_phase(id, "ndp:plan", now);
        // Disjoint-field borrows keep the batch inside the op (no clone);
        // only the flattened pair list is materialised, once.
        let Self {
            ops,
            registry,
            partitions,
            partition_stats,
            cfg,
            next_request,
            pair_pool,
            ..
        } = self;
        let op = ops.get_mut(&id).expect("op");
        let OpKind::NdpSls { table, batch, opts } = &op.kind else {
            unreachable!("phase/kind mismatch")
        };
        let (table, opts) = (*table, *opts);
        let binding = registry.binding(table);
        let image = &binding.image;
        let spec = image.table().spec();
        // All pair lists come from (and return to) the pool, so the plan
        // allocates nothing once warm.
        let mut pairs = pair_pool.pop().unwrap_or_default();
        batch.pairs_into(&mut pairs);
        let (hot_pairs, cold_pairs) = match opts
            .use_partition
            .then(|| partitions.get(&table.0))
            .flatten()
        {
            Some(partition) => {
                let mut hot = pair_pool.pop().unwrap_or_default();
                let mut cold = pair_pool.pop().unwrap_or_default();
                for pair in pairs.drain(..) {
                    if partition.is_hot(pair.0) {
                        hot.push(pair);
                    } else {
                        cold.push(pair);
                    }
                }
                if pair_pool.len() < PAIR_POOL_CAP {
                    pair_pool.push(pairs);
                }
                (hot, cold)
            }
            None => (pair_pool.pop().unwrap_or_default(), pairs),
        };
        if opts.use_partition {
            let stats = partition_stats.entry(table.0).or_default();
            stats.add_hits(hot_pairs.len() as u64);
            stats.add_misses(cold_pairs.len() as u64);
        }
        let cold_cfg = SlsConfig {
            dim: spec.dim as u32,
            quant: spec.quant,
            rows_per_page: image.rows_per_page() as u32,
            n_results: batch.outputs() as u32,
            pairs: cold_pairs,
        };
        let request_id = *next_request % cfg.ndp.table_align;
        *next_request += 1;
        op.outputs.reset(batch.outputs(), spec.dim);
        let hot = hot_pairs.len();
        op.ndp = Some(NdpPlan {
            cold_cfg,
            hot_pairs,
            request_id,
            result_data: None,
        });
        if hot == 0 {
            self.ndp_send_write(now, id);
        } else {
            // Gather the hot rows from host DRAM (the static partition).
            let host = self.host();
            let dur = SimDuration::from_ns(host.per_lookup_ns * hot as u64)
                + self.dram_time((hot * spec.row_bytes()) as f64);
            self.ops.get_mut(&id).expect("op").phase = Phase::NdpHotGather;
            self.charge(id, dur);
        }
    }

    /// Hot gather done (or skipped): fold hot partial sums in and send the
    /// NDP config-write.
    fn ndp_send_write(&mut self, now: SimTime, id: OpId) {
        let Self {
            ops,
            registry,
            row_scratch,
            cfg,
            dev,
            ..
        } = self;
        let op = ops.get_mut(&id).expect("op");
        let OpKind::NdpSls { table, .. } = &op.kind else {
            unreachable!("phase/kind mismatch")
        };
        let binding = registry.binding(*table);
        let base = binding.base_lpn;
        let align = cfg.ndp.table_align;
        let plan = op.ndp.as_ref().expect("plan set");
        // Functional hot-partition accumulation, through the reused
        // scratch (no per-row vectors).
        let table_data = binding.image.table();
        for &(row, slot) in &plan.hot_pairs {
            table_data.accumulate_row(row, row_scratch, op.outputs.row_mut(slot as usize));
        }
        if plan.cold_cfg.pairs.is_empty() {
            // Everything was hot: no device work at all.
            self.finish_op(now, id);
            return;
        }
        // Encode into a recycled transfer buffer: the engine hands the
        // spent payload back to the same pool after parsing it, closing
        // the config-write allocation loop.
        let mut payload = dev.take_host_buffer(plan.cold_cfg.encoded_len());
        plan.cold_cfg.encode_into(&mut payload);
        let slba = NvmeCommand::ndp_slba(base, plan.request_id, align);
        let qid = op.qid;
        op.phase = Phase::NdpAwaitWrite;
        let cid = self.alloc_cid(qid);
        self.pending_cmd.insert((qid, cid), id);
        self.submit_cmd(now, qid, NvmeCommand::ndp_write(cid, slba, payload));
    }

    fn ndp_on_write_done(&mut self, now: SimTime, id: OpId) {
        self.trace_phase(id, "ndp:write", now);
        let table = match &self.ops[&id].kind {
            OpKind::NdpSls { table, .. } => *table,
            _ => unreachable!("phase/kind mismatch"),
        };
        let base = self.registry.binding(table).base_lpn;
        let align = self.cfg.ndp.table_align;
        let block_bytes = self.cfg.ssd.block_bytes();
        let op = self.ops.get_mut(&id).expect("op");
        let plan = op.ndp.as_ref().expect("plan set");
        let nlb = plan.cold_cfg.result_blocks(block_bytes);
        let slba = NvmeCommand::ndp_slba(base, plan.request_id, align);
        let qid = op.qid;
        op.phase = Phase::NdpAwaitRead;
        let cid = self.alloc_cid(qid);
        self.pending_cmd.insert((qid, cid), id);
        self.submit_cmd(now, qid, NvmeCommand::ndp_read(cid, slba, nlb));
    }

    fn ndp_on_read_done(&mut self, now: SimTime, id: OpId, data: Vec<u8>) {
        self.trace_phase(id, "ndp:read", now);
        let overhead_ns = self.host().op_overhead_ns;
        let op = self.ops.get_mut(&id).expect("op");
        let plan = op.ndp.as_mut().expect("plan set");
        let bytes = plan.cold_cfg.result_bytes();
        plan.result_data = Some(data);
        op.phase = Phase::NdpMerge;
        let dur = SimDuration::from_ns(overhead_ns) + self.dram_time(bytes as f64);
        self.charge(id, dur);
    }

    fn ndp_merge_done(&mut self, now: SimTime, id: OpId) {
        let op = self.ops.get_mut(&id).expect("op");
        let plan = op.ndp.as_mut().expect("plan set");
        let data = plan.result_data.take().expect("result data");
        // Device partial sums fold straight into the flat accumulator —
        // no intermediate nested vectors.
        SlsConfig::accumulate_results(&data, op.outputs.as_mut_slice());
        self.dev.recycle_buffer(data);
        self.finish_op(now, id);
    }

    // ----- shared plumbing -----

    fn alloc_cid(&mut self, qid: u16) -> u16 {
        let c = self.next_cid[qid as usize];
        self.next_cid[qid as usize] = c.wrapping_add(1);
        c
    }

    fn submit_cmd(&mut self, now: SimTime, qid: u16, cmd: NvmeCommand) {
        let Self { dev, q, .. } = self;
        dev.queue(qid).submit(cmd).expect("queue depth respected");
        dev.doorbell(now, qid, &mut |d, e| q.push_after(d, SysEvent::Dev(e)));
    }

    fn poll_completions(&mut self, now: SimTime) {
        let mut completions = std::mem::take(&mut self.completions);
        completions.clear();
        for qid in 0..self.cfg.ssd.io_queues as u16 {
            while let Some(c) = self.dev.queue(qid).poll() {
                completions.push((qid, c));
            }
        }
        for (qid, c) in completions.drain(..) {
            let id = self
                .pending_cmd
                .remove(&(qid, c.cid))
                .expect("completion for unknown command");
            if c.status != NvmeStatus::Success {
                self.on_failed_completion(now, id, c.cid, DeviceError::from_status(c.status));
                continue;
            }
            let phase_kind = match &self.ops[&id].phase {
                Phase::BaseIo(_) => 0,
                Phase::NdpAwaitWrite => 1,
                Phase::NdpAwaitRead => 2,
                other => unreachable!("completion in unexpected phase {other:?}"),
            };
            match phase_kind {
                0 => {
                    let data = c.data.expect("read data");
                    if self.ops[&id].failed.is_some() {
                        self.baseline_absorb(now, id, c.cid, data);
                    } else {
                        self.baseline_on_page(now, id, c.cid, data);
                    }
                }
                1 => self.ndp_on_write_done(now, id),
                _ => {
                    let data = c.data.expect("NDP results");
                    self.ndp_on_read_done(now, id, data);
                }
            }
        }
        self.completions = completions;
    }

    /// A non-success completion arrived: poison the op and run the
    /// phase-appropriate teardown. NDP ops have a single command in
    /// flight, so they finish (with the error) immediately; a baseline op
    /// stops issuing reads, drops buffered-but-unfolded pages, and
    /// finishes once its in-flight commands and accumulate charge drain.
    fn on_failed_completion(&mut self, now: SimTime, id: OpId, cid: u16, err: DeviceError) {
        let op = self.ops.get_mut(&id).expect("op exists");
        if op.failed.is_none() {
            op.failed = Some(err);
        }
        let base_drain = match &mut op.phase {
            Phase::BaseIo(io) => {
                io.bufs.outstanding.remove(&cid).expect("tracked command");
                io.next = io.bufs.cmds.len();
                io.bufs.backlog.clear();
                let stale = std::mem::take(&mut io.bufs.data);
                let done = io.bufs.outstanding.is_empty() && io.accum_current.is_none();
                Some((stale, done))
            }
            Phase::NdpAwaitWrite | Phase::NdpAwaitRead => None,
            other => unreachable!("failed completion in unexpected phase {other:?}"),
        };
        match base_drain {
            Some((stale, done)) => {
                for (_, data) in stale {
                    self.dev.recycle_buffer(data);
                }
                if done {
                    self.baseio_finish_failed(now, id);
                }
            }
            None => self.finish_op(now, id),
        }
    }

    /// A late successful completion for an already-poisoned baseline op:
    /// recycle its transfer buffer without folding anything in, and
    /// finish the op once the last straggler drains.
    fn baseline_absorb(&mut self, now: SimTime, id: OpId, cid: u16, data: Vec<u8>) {
        self.dev.recycle_buffer(data);
        let op = self.ops.get_mut(&id).expect("op exists");
        let Phase::BaseIo(io) = &mut op.phase else {
            unreachable!("poisoned straggler outside BaseIo")
        };
        io.bufs.outstanding.remove(&cid).expect("tracked command");
        if io.bufs.outstanding.is_empty() && io.accum_current.is_none() {
            self.baseio_finish_failed(now, id);
        }
    }

    /// Every outstanding command and accumulate charge of a poisoned
    /// baseline op has drained: recycle its planner buffers and surface
    /// the error through the result.
    fn baseio_finish_failed(&mut self, now: SimTime, id: OpId) {
        let phase = std::mem::replace(
            &mut self.ops.get_mut(&id).expect("op").phase,
            Phase::Pending,
        );
        let Phase::BaseIo(mut io) = phase else {
            unreachable!("poisoned op outside BaseIo")
        };
        io.bufs.clear();
        self.baseio_pool.push(io.bufs);
        self.finish_op(now, id);
    }

    fn recycle_pairs(&mut self, mut pairs: Vec<(u64, u32)>) {
        if self.pair_pool.len() < PAIR_POOL_CAP {
            pairs.clear();
            self.pair_pool.push(pairs);
        }
    }

    fn finish_op(&mut self, now: SimTime, id: OpId) {
        let mut op = self.ops.remove(&id).expect("op exists");
        if self.tracer.enabled() && op.span.is_some() {
            // Tail phase: whatever ran since the last phase span ended.
            // For a failed op it covers the abort drain, which the
            // `failed` argument on the op span flags.
            let (tail, label) = match &op.kind {
                OpKind::DramSls { .. } => ("op:compute", "dram"),
                OpKind::HostCompute { .. } => ("op:compute", "host"),
                OpKind::BaselineSls { .. } => ("base:io", "baseline"),
                OpKind::NdpSls { .. } => ("ndp:merge", "ndp"),
            };
            if now > op.phase_started {
                self.tracer.span(tail, op.phase_started, now, op.span);
            }
            self.tracer.emit(
                op.span,
                "op",
                op.submitted,
                now,
                op.span_parent,
                "failed",
                op.failed.is_some() as u64,
                label,
            );
        }
        if let Some(plan) = op.ndp.take() {
            self.recycle_pairs(plan.cold_cfg.pairs);
            self.recycle_pairs(plan.hot_pairs);
        }
        let outputs = match &op.kind {
            OpKind::HostCompute { .. } => None,
            _ => Some(op.outputs),
        };
        self.results.insert(
            id,
            OpResult {
                outputs,
                error: op.failed,
                submitted: op.submitted,
                started: op.started,
                finished: now,
            },
        );
        // Release the worker.
        let pool_kind = op.pool;
        if let Some(w) = op.worker {
            let pool = self.pool_mut(pool_kind);
            pool.bound[w] = None;
            pool.free.push(w);
        }
        // Wake dependents.
        for dep in op.dependents {
            let d = self.ops.get_mut(&dep).expect("dependent exists");
            d.deps_left -= 1;
            if d.deps_left == 0 {
                let p = d.pool;
                self.pool_mut(p).ready.push_back(dep);
                self.dispatch(p);
            }
        }
        self.dispatch(pool_kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RecSsdConfig;
    use recssd_embedding::{EmbeddingTable, PageLayout, Quantization, TableImage, TableSpec};

    fn sys_with_table(rows: u64) -> (System, TableId) {
        let mut sys = System::new(RecSsdConfig::small());
        let spec = TableSpec::new(rows, 8, Quantization::F32);
        let table = sys.add_table(TableImage::new(
            EmbeddingTable::procedural(spec, 1),
            PageLayout::Spread,
            16 * 1024,
        ));
        (sys, table)
    }

    #[test]
    fn dependency_on_already_finished_op_starts_immediately() {
        let (mut sys, table) = sys_with_table(100);
        let batch = LookupBatch::new(vec![vec![1, 2]]);
        let a = sys.submit(OpKind::dram_sls(table, batch.clone()));
        sys.run_until_idle();
        // `a` is finished; a dependent submitted now must not deadlock.
        let b = sys.submit_after(OpKind::dram_sls(table, batch), &[a]);
        sys.run_until_idle();
        assert!(sys.result(b).finished >= sys.result(a).finished);
    }

    #[test]
    fn diamond_dependencies_resolve_in_order() {
        let (mut sys, table) = sys_with_table(100);
        let batch = LookupBatch::new(vec![vec![3]]);
        let root = sys.submit(OpKind::dram_sls(table, batch.clone()));
        let left = sys.submit_after(OpKind::host_compute(1e6, 1e4), &[root]);
        let right = sys.submit_after(OpKind::host_compute(2e6, 1e4), &[root]);
        let join = sys.submit_after(OpKind::dram_sls(table, batch), &[left, right]);
        sys.run_until_idle();
        let finish = |op: OpId| sys.result(op).finished;
        assert!(finish(left) >= finish(root));
        assert!(finish(right) >= finish(root));
        assert!(sys.result(join).started >= finish(left).max(finish(right)));
    }

    #[test]
    fn op_latency_includes_worker_queueing_but_service_does_not() {
        let mut cfg = RecSsdConfig::small();
        cfg.host.nn_workers = 1;
        let mut sys = System::new(cfg);
        let a = sys.submit(OpKind::host_compute(1e9, 1e6));
        let b = sys.submit(OpKind::host_compute(1e9, 1e6));
        sys.run_until_idle();
        let rb = sys.result(b);
        assert!(rb.latency() > rb.service_time(), "b queued behind a");
        assert_eq!(rb.started, sys.result(a).finished);
    }

    #[test]
    fn host_compute_time_follows_the_roofline() {
        let mut sys = System::new(RecSsdConfig::small());
        let host = sys.config().host.clone();
        // Compute-bound op: flops dominate.
        let flops = 1e9;
        let op = sys.submit(OpKind::host_compute(flops, 1.0));
        sys.run_until_idle();
        let want = SimDuration::from_ns(host.op_overhead_ns)
            + SimDuration::from_secs_f64(flops / host.gflops);
        assert_eq!(sys.result(op).service_time(), want);
        // Memory-bound op: bytes dominate.
        let bytes = 1e9;
        let op = sys.submit(OpKind::host_compute(1.0, bytes));
        sys.run_until_idle();
        let want = SimDuration::from_ns(host.op_overhead_ns)
            + SimDuration::from_secs_f64(bytes / host.dram_bytes_per_sec);
        assert_eq!(sys.result(op).service_time(), want);
    }

    #[test]
    #[should_panic(expected = "not finished")]
    fn result_before_completion_panics() {
        let (mut sys, table) = sys_with_table(50);
        let op = sys.submit(OpKind::dram_sls(table, LookupBatch::new(vec![vec![1]])));
        let _ = sys.result(op);
    }

    #[test]
    #[should_panic(expected = "within the queue depth")]
    fn excessive_io_concurrency_rejected() {
        let (mut sys, table) = sys_with_table(50);
        let opts = SlsOptions {
            io_concurrency: 10_000,
            ..SlsOptions::default()
        };
        sys.submit(OpKind::baseline_sls(
            table,
            LookupBatch::new(vec![vec![1]]),
            opts,
        ));
        sys.run_until_idle();
    }

    #[test]
    fn baseline_coalesces_contiguous_pages_into_multiblock_reads() {
        // 16 sequential rows on a spread layout occupy 16 contiguous
        // pages and coalesce into a single read; pages 40 and 41 share a
        // second command (the 24-page gap exceeds the bridge limit) and
        // the 18-page gap to 60 forces a third. The result still
        // bit-matches the DRAM reference.
        let (mut sys, table) = sys_with_table(100);
        let batch = LookupBatch::new(vec![(0..16).collect(), vec![40, 41, 60]]);
        let reference = sys.submit(OpKind::dram_sls(table, batch.clone()));
        sys.run_until_idle();
        let before = sys.device().stats().read_commands.get();
        let op = sys.submit(OpKind::baseline_sls(table, batch, SlsOptions::default()));
        sys.run_until_idle();
        let issued = sys.device().stats().read_commands.get() - before;
        assert_eq!(issued, 3, "contiguous runs must coalesce");
        let got = sys.take_result(op).outputs.expect("SLS outputs");
        let want = sys.result(reference).outputs.as_ref().expect("reference");
        assert_eq!(&got, want, "coalesced baseline diverged from DRAM path");
    }

    #[test]
    fn coalesce_limit_one_disables_coalescing() {
        let mut cfg = RecSsdConfig::small();
        cfg.host.read_coalesce_limit = 1;
        let mut sys = System::new(cfg);
        let spec = TableSpec::new(64, 8, Quantization::F32);
        let table = sys.add_table(TableImage::new(
            EmbeddingTable::procedural(spec, 1),
            PageLayout::Spread,
            16 * 1024,
        ));
        let batch = LookupBatch::new(vec![(0..10).collect()]);
        sys.submit(OpKind::baseline_sls(table, batch, SlsOptions::default()));
        sys.run_until_idle();
        assert_eq!(sys.device().stats().read_commands.get(), 10);
    }

    #[test]
    fn uncorrectable_faults_surface_as_typed_errors() {
        let (mut sys, table) = sys_with_table(100);
        let mut fault = crate::FaultConfig::quiet(7);
        fault.uncorrectable_rate = 1.0;
        sys.set_fault_plan(Some(crate::FaultPlan::new(fault)));
        let batch = LookupBatch::new(vec![vec![1, 2, 50]]);
        let base = sys.submit(OpKind::baseline_sls(
            table,
            batch.clone(),
            SlsOptions::default(),
        ));
        let ndp = sys.submit(OpKind::ndp_sls(table, batch, SlsOptions::default()));
        sys.run_until_idle();
        assert_eq!(sys.result(base).error, Some(crate::DeviceError::Media));
        assert_eq!(sys.result(ndp).error, Some(crate::DeviceError::Media));
        assert!(
            sys.fault_stats()
                .expect("plan installed")
                .uncorrectable
                .get()
                > 0
        );
    }

    #[test]
    fn transient_faults_recover_without_surfacing() {
        let (mut sys, table) = sys_with_table(100);
        let batch = LookupBatch::new(vec![vec![1, 2, 50], vec![7, 7]]);
        let reference = sys.submit(OpKind::dram_sls(table, batch.clone()));
        let clean = sys.submit(OpKind::baseline_sls(
            table,
            batch.clone(),
            SlsOptions::default(),
        ));
        sys.run_until_idle();
        let clean_latency = sys.result(clean).service_time();

        let mut fault = crate::FaultConfig::quiet(7);
        fault.transient_read_error_rate = 1.0;
        sys.set_fault_plan(Some(crate::FaultPlan::new(fault)));
        sys.device_mut().ftl_mut().drop_caches();
        let base = sys.submit(OpKind::baseline_sls(
            table,
            batch.clone(),
            SlsOptions::default(),
        ));
        let ndp = sys.submit(OpKind::ndp_sls(table, batch, SlsOptions::default()));
        sys.run_until_idle();
        let want = sys.result(reference).outputs.as_ref().expect("reference");
        for op in [base, ndp] {
            let r = sys.result(op);
            assert!(r.is_ok(), "transient faults must be absorbed by ECC retry");
            assert_eq!(r.outputs.as_ref().expect("outputs"), want);
        }
        assert!(
            sys.result(base).service_time() > clean_latency,
            "ECC retries must cost time"
        );
    }

    #[test]
    fn sls_workers_map_to_distinct_queues() {
        // Eight SLS workers, eight I/O queues: concurrent baseline ops use
        // different queue pairs (the §4.2 worker-to-queue matching).
        let (mut sys, table) = sys_with_table(500);
        let batch = LookupBatch::new(vec![(0..32).map(|i| i * 13 % 500).collect()]);
        let ops: Vec<OpId> = (0..4)
            .map(|_| {
                sys.submit(OpKind::baseline_sls(
                    table,
                    batch.clone(),
                    SlsOptions::default(),
                ))
            })
            .collect();
        sys.run_until_idle();
        // All complete with identical outputs (same batch).
        let first = sys.result(ops[0]).outputs.clone();
        for &op in &ops[1..] {
            assert_eq!(sys.result(op).outputs, first);
        }
    }
}
