//! Configuration of the full RecSSD system: device, NDP engine, host.

use recssd_ssd::SsdConfig;

/// NDP engine (firmware-side) parameters.
///
/// The two cost pairs are the embedded-CPU calibration knobs (1 GHz ARM
/// A9-class): *config processing* scans the sorted pair list and builds
/// per-page work lists; *translation* extracts and accumulates vectors
/// from returned flash pages. §6.1: "roughly half the time in the
/// RecSSD's FTL is spent on Translation. Given the limited hardware
/// capability of the 1GHz, dual core ARM A9 processors..."
#[derive(Debug, Clone, PartialEq)]
pub struct NdpConfig {
    /// Table bases are multiples of this many logical pages; request ids
    /// are encoded below it (§4.3's modulus trick).
    pub table_align: u64,
    /// Capacity of the pending-SLS-request buffer.
    pub max_entries: usize,
    /// Fixed firmware cost of processing one SLS config (ns).
    pub config_process_fixed_ns: u64,
    /// Per-pair firmware cost of config processing (ns).
    pub config_process_per_pair_ns: u64,
    /// Fixed firmware cost of translating one returned page (ns).
    pub translate_fixed_ns: u64,
    /// Per-byte firmware cost of extracting + accumulating vector data
    /// from a page (ns).
    pub translate_per_byte_ns: f64,
    /// Fixed cost of merging per-engine partial results into the
    /// request scratchpad (ns). Only charged when the device runs a
    /// per-channel engine pool (`ssd.ftl.engines`).
    pub merge_fixed_ns: u64,
    /// Per-byte cost of the partial-result merge: each engine partial
    /// contributes its result bytes to the folded total (ns/byte).
    pub merge_per_byte_ns: f64,
    /// Slots of the direct-mapped SSD-side embedding cache (0 disables).
    pub embed_cache_slots: usize,
}

impl NdpConfig {
    /// Calibrated Cosmos+ defaults (see DESIGN.md §4).
    pub fn cosmos() -> Self {
        NdpConfig {
            // 2 Mi pages = 32 GiB of 16 KB blocks per table slot: fits a
            // 1 M-row spread-layout table with headroom, and lets 32
            // tables (the RM2 configuration) share the 2 TB device.
            table_align: 1 << 21,
            max_entries: 64,
            config_process_fixed_ns: 5_000,
            config_process_per_pair_ns: 150,
            // Per-page bookkeeping dominates for sparse vectors; the
            // per-byte term (NEON-class accumulate on the A9) matters once
            // vectors approach the page size (Fig. 11a).
            translate_fixed_ns: 5_000,
            translate_per_byte_ns: 4.0,
            // Folding one engine's f32 partial is a streaming add over
            // SSD DRAM — far cheaper per byte than translation's
            // decode + scatter, but not free on the A9-class cores.
            merge_fixed_ns: 2_000,
            merge_per_byte_ns: 0.5,
            embed_cache_slots: 0,
        }
    }

    /// Enables the SSD-side direct-mapped embedding cache with the given
    /// slot count.
    pub fn with_embed_cache(mut self, slots: usize) -> Self {
        self.embed_cache_slots = slots;
        self
    }

    /// Firmware duration of translating one page carrying `vector_bytes`
    /// of useful embedding data.
    pub fn translate_time(&self, vector_bytes: usize) -> recssd_sim::SimDuration {
        recssd_sim::SimDuration::from_ns(
            self.translate_fixed_ns + (vector_bytes as f64 * self.translate_per_byte_ns) as u64,
        )
    }

    /// Firmware duration of processing a config with `pairs` entries.
    pub fn config_process_time(&self, pairs: usize) -> recssd_sim::SimDuration {
        recssd_sim::SimDuration::from_ns(
            self.config_process_fixed_ns + self.config_process_per_pair_ns * pairs as u64,
        )
    }

    /// Duration of folding `partial_bytes` of per-engine partial results
    /// into the request scratchpad (multi-engine merge step).
    pub fn merge_time(&self, partial_bytes: usize) -> recssd_sim::SimDuration {
        recssd_sim::SimDuration::from_ns(
            self.merge_fixed_ns + (partial_bytes as f64 * self.merge_per_byte_ns) as u64,
        )
    }
}

/// Host CPU and driver model (the Skylake desktop of §5).
#[derive(Debug, Clone, PartialEq)]
pub struct HostConfig {
    /// SLS worker threads ("We match our SLS worker count to the number of
    /// independent available I/O queues in our SSD driver stack", §4.2).
    pub sls_workers: usize,
    /// Neural-network worker threads ("we match our neural network workers
    /// to the available CPU resources").
    pub nn_workers: usize,
    /// Dense compute throughput (FLOP/s) for FC layers.
    pub gflops: f64,
    /// Streaming DRAM bandwidth (bytes/s) for embedding gathers.
    pub dram_bytes_per_sec: f64,
    /// Host driver software cost per NVMe command (submission + polled
    /// completion), ns.
    pub sw_cmd_ns: u64,
    /// Host cost per embedding lookup (index handling), ns.
    pub per_lookup_ns: u64,
    /// Fixed overhead of launching any host operator, ns.
    pub op_overhead_ns: u64,
    /// Largest number of *contiguous* logical pages the baseline SLS
    /// planner folds into one NVMe read (1 disables coalescing). Each
    /// command charges `fw_cmd_ns` once however many pages it covers, so
    /// contiguous runs — e.g. the heat-packed head of a placed table —
    /// amortise the serial firmware cost that caps baseline IOPS (§3.2).
    pub read_coalesce_limit: usize,
    /// Largest run of *unwanted* pages the planner reads through to
    /// bridge two nearby wanted pages into one command (0 keeps commands
    /// exact). A bridged page costs `fw_per_page_ns` plus its flash and
    /// PCIe time — orders of magnitude below the `fw_cmd_ns` a separate
    /// command would pay — so small gaps in the heat-packed head are
    /// worth reading through.
    pub read_bridge_limit: usize,
}

impl HostConfig {
    /// Quad-core Skylake-class defaults. The dense throughput reflects
    /// what the Caffe2 f32 operator stack sustains on a quad-core desktop
    /// (well below peak FLOPS), which is what the paper's latencies embed.
    pub fn skylake() -> Self {
        HostConfig {
            sls_workers: 8,
            nn_workers: 4,
            gflops: 15e9,
            dram_bytes_per_sec: 10e9,
            sw_cmd_ns: 8_000,
            per_lookup_ns: 60,
            op_overhead_ns: 2_000,
            read_coalesce_limit: 64,
            read_bridge_limit: 2,
        }
    }
}

/// The full system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RecSsdConfig {
    /// The simulated device.
    pub ssd: SsdConfig,
    /// The firmware NDP engine.
    pub ndp: NdpConfig,
    /// The host model.
    pub host: HostConfig,
}

impl RecSsdConfig {
    /// The full Cosmos+ configuration used for paper-scale experiments.
    pub fn cosmos() -> Self {
        RecSsdConfig {
            ssd: SsdConfig::cosmos(),
            ndp: NdpConfig::cosmos(),
            host: HostConfig::skylake(),
        }
    }

    /// Small-geometry configuration for tests and examples: identical
    /// timing, tiny flash array, smaller table alignment.
    pub fn small() -> Self {
        RecSsdConfig {
            ssd: SsdConfig::cosmos_small(),
            ndp: NdpConfig {
                table_align: 1 << 10,
                ..NdpConfig::cosmos()
            },
            host: HostConfig::skylake(),
        }
    }

    /// Small but *wide* configuration: a tiny flash array with the full
    /// eight channels of the Cosmos+ device, so internal-parallelism
    /// effects (the source of the NDP speedup) appear at test scale.
    pub fn small_wide() -> Self {
        let mut cfg = RecSsdConfig::small();
        cfg.ssd.ftl.flash.geometry = recssd_flash::FlashGeometry {
            channels: 8,
            dies_per_channel: 2,
            blocks_per_die: 512,
            pages_per_block: 16,
            page_bytes: 16 * 1024,
        };
        cfg.ssd.ftl.logical_pages = cfg.ssd.ftl.flash.geometry.total_pages() / 2;
        cfg.ndp.table_align = 4096; // up to 16 tables of up to 4096 pages
        cfg
    }

    /// Validates nested configurations.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent parameters.
    pub fn validate(&self) {
        self.ssd.validate();
        assert!(self.ndp.table_align > 0, "table alignment must be positive");
        assert!(self.ndp.max_entries > 0, "SLS buffer needs entries");
        assert!(
            self.host.sls_workers > 0 && self.host.nn_workers > 0,
            "need workers"
        );
        assert!(
            self.host.read_coalesce_limit >= 1,
            "read coalescing limit must be at least 1"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        RecSsdConfig::cosmos().validate();
        RecSsdConfig::small().validate();
    }

    #[test]
    fn translation_cost_scales_with_bytes() {
        let ndp = NdpConfig::cosmos();
        let d32 = ndp.translate_time(128); // dim-32 f32 vector
        let d64 = ndp.translate_time(256);
        assert!(d64 > d32);
        // Calibration anchor: a dim-32 f32 page costs ~5.5 us, below the
        // ~12 us/page internal flash service rate, so the NDP STR path is
        // flash-bound with translation ≈ half the time (Fig. 8).
        assert!((5_000..7_000).contains(&d32.as_ns()), "{d32}");
    }

    #[test]
    fn config_process_cost_scales_with_pairs() {
        let ndp = NdpConfig::cosmos();
        assert!(ndp.config_process_time(1000) > ndp.config_process_time(10));
    }
}
