//! Placement of embedding tables onto the device's logical block space.

use std::sync::Arc;

use recssd_embedding::{TableId, TableImage, TableImageOracle};
use recssd_ftl::Lpn;
use recssd_ssd::{NdpEngine, SsdDevice};

/// One table bound to a device location.
#[derive(Debug, Clone)]
pub struct TableBinding {
    /// The table's id within the registry.
    pub id: TableId,
    /// Layout + contents.
    pub image: Arc<TableImage>,
    /// First logical page of the table (a multiple of the alignment).
    pub base_lpn: u64,
}

/// Assigns aligned base addresses to tables and preloads them onto the
/// device. Alignment is the §4.3 contract that lets the firmware separate
/// `(table base, request id)` from a single SLBA with a modulus.
///
/// # Example
///
/// ```
/// use recssd::TableRegistry;
/// use recssd_embedding::{EmbeddingTable, PageLayout, Quantization, TableImage, TableSpec};
///
/// let mut reg = TableRegistry::new(1024);
/// let spec = TableSpec::new(100, 8, Quantization::F32);
/// let img = TableImage::new(EmbeddingTable::procedural(spec, 0), PageLayout::Spread, 16 * 1024);
/// let id = reg.register(img);
/// assert_eq!(reg.binding(id).base_lpn % 1024, 0);
/// ```
#[derive(Debug)]
pub struct TableRegistry {
    align: u64,
    tables: Vec<TableBinding>,
}

impl TableRegistry {
    /// Creates a registry with the given base alignment (in pages).
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero.
    pub fn new(align: u64) -> Self {
        assert!(align > 0, "alignment must be positive");
        TableRegistry {
            align,
            tables: Vec::new(),
        }
    }

    /// The base alignment in pages.
    pub fn align(&self) -> u64 {
        self.align
    }

    /// Registers a table, assigning it the next aligned base.
    ///
    /// # Panics
    ///
    /// Panics if the table needs more pages than one alignment slot (the
    /// "minimum table size and alignment constraints" of §4.3 would be
    /// violated and SLBA decoding would be ambiguous).
    pub fn register(&mut self, image: TableImage) -> TableId {
        assert!(
            image.pages() <= self.align,
            "table of {} pages exceeds the {}-page alignment slot",
            image.pages(),
            self.align
        );
        let id = TableId(self.tables.len() as u32);
        let base_lpn = self.tables.len() as u64 * self.align;
        self.tables.push(TableBinding {
            id,
            image: Arc::new(image),
            base_lpn,
        });
        id
    }

    /// The binding of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this registry.
    pub fn binding(&self, id: TableId) -> &TableBinding {
        &self.tables[id.0 as usize]
    }

    /// Swaps the image bound at `id` in place (same slot, same base LPN),
    /// returning the page count of the image it replaced. Placement
    /// refresh uses this to re-bind a slot to a re-packed image without
    /// consuming a new alignment slot.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the new image exceeds the slot.
    pub fn replace(&mut self, id: TableId, image: TableImage) -> u64 {
        assert!(
            image.pages() <= self.align,
            "table of {} pages exceeds the {}-page alignment slot",
            image.pages(),
            self.align
        );
        let b = &mut self.tables[id.0 as usize];
        let old_pages = b.image.pages();
        b.image = Arc::new(image);
        old_pages
    }

    /// All bindings in registration order.
    pub fn bindings(&self) -> &[TableBinding] {
        &self.tables
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` if no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Logical pages consumed so far (including alignment padding).
    pub fn used_pages(&self) -> u64 {
        self.tables.len() as u64 * self.align
    }

    /// Preloads one table's image onto the device.
    pub fn bind_to_device<X: NdpEngine>(&self, id: TableId, dev: &mut SsdDevice<X>) {
        let b = self.binding(id);
        dev.preload(
            Lpn(b.base_lpn),
            b.image.pages(),
            Arc::new(TableImageOracle::new(b.image.clone(), b.base_lpn)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recssd_embedding::{EmbeddingTable, PageLayout, Quantization, TableSpec};

    fn image(rows: u64) -> TableImage {
        TableImage::new(
            EmbeddingTable::procedural(TableSpec::new(rows, 8, Quantization::F32), 1),
            PageLayout::Spread,
            16 * 1024,
        )
    }

    #[test]
    fn bases_are_aligned_and_disjoint() {
        let mut reg = TableRegistry::new(512);
        let a = reg.register(image(100));
        let b = reg.register(image(500));
        assert_eq!(reg.binding(a).base_lpn, 0);
        assert_eq!(reg.binding(b).base_lpn, 512);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.used_pages(), 1024);
    }

    #[test]
    #[should_panic(expected = "exceeds the")]
    fn oversized_table_rejected() {
        let mut reg = TableRegistry::new(64);
        reg.register(image(100));
    }
}
