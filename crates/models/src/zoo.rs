//! The eight-model zoo and its paper-sourced parameters.

use recssd_embedding::Quantization;

use crate::MlpSpec;

/// Performance class of a model (§3.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelClass {
    /// Runtime dominated by embedding-table operations (DLRM-RMC1/2/3).
    EmbeddingDominated,
    /// Runtime dominated by dense matrix compute (WND, MTWND, DIN, DIEN,
    /// NCF).
    MlpDominated,
}

/// Architecture parameters of one recommendation model.
///
/// The embedding-side parameters of the RMC models come from Table 1 of
/// the paper; MLP widths and the per-sample "extra" compute (attention
/// for DIN, GRU interest evolution for DIEN, multi-task heads for MTWND)
/// are sized so the DRAM-vs-SSD behaviour of Fig. 6 reproduces
/// (MLP-dominated models within ~1.01–1.09×).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Model name as used in the paper's figures.
    pub name: &'static str,
    /// Performance class.
    pub class: ModelClass,
    /// Number of embedding tables.
    pub tables: usize,
    /// Rows per table (§5: 1 M vectors for the evaluation).
    pub rows_per_table: u64,
    /// Features per embedding vector (Table 1 "Feature Size").
    pub dim: usize,
    /// Embedding lookups per table per sample (Table 1 "Indices").
    pub lookups_per_table: usize,
    /// Row storage format.
    pub quant: Quantization,
    /// Dense-feature bottom MLP.
    pub bottom_mlp: MlpSpec,
    /// Post-interaction top MLP.
    pub top_mlp: MlpSpec,
    /// Additional dense FLOPs per sample beyond the two MLPs
    /// (attention, recurrent cells, extra task heads).
    pub extra_flops_per_sample: f64,
}

impl ModelConfig {
    /// DLRM-RMC1: embedding-dominated, Table 1 row 1 (32 features, 80
    /// indices per lookup, 8 tables).
    pub fn dlrm_rmc1() -> Self {
        ModelConfig {
            name: "DLRM-RMC1",
            class: ModelClass::EmbeddingDominated,
            tables: 8,
            rows_per_table: 1_000_000,
            dim: 32,
            lookups_per_table: 80,
            quant: Quantization::F32,
            bottom_mlp: MlpSpec::new(vec![256, 128, 32]),
            top_mlp: MlpSpec::new(vec![288, 128, 1]),
            extra_flops_per_sample: 0.0,
        }
    }

    /// DLRM-RMC2: embedding-dominated, Table 1 row 2 (64 features, 120
    /// indices per lookup, 32 tables).
    pub fn dlrm_rmc2() -> Self {
        ModelConfig {
            name: "DLRM-RMC2",
            class: ModelClass::EmbeddingDominated,
            tables: 32,
            rows_per_table: 1_000_000,
            dim: 64,
            lookups_per_table: 120,
            quant: Quantization::F32,
            bottom_mlp: MlpSpec::new(vec![256, 128, 64]),
            top_mlp: MlpSpec::new(vec![2112, 256, 1]),
            extra_flops_per_sample: 0.0,
        }
    }

    /// DLRM-RMC3: embedding-dominated, Table 1 row 3 (32 features, 20
    /// indices per lookup, 10 tables).
    pub fn dlrm_rmc3() -> Self {
        ModelConfig {
            name: "DLRM-RMC3",
            class: ModelClass::EmbeddingDominated,
            tables: 10,
            rows_per_table: 1_000_000,
            dim: 32,
            lookups_per_table: 20,
            quant: Quantization::F32,
            bottom_mlp: MlpSpec::new(vec![128, 64, 32]),
            top_mlp: MlpSpec::new(vec![352, 128, 1]),
            extra_flops_per_sample: 0.0,
        }
    }

    /// Wide & Deep: MLP-dominated; a handful of one-hot lookups feeding
    /// wide FC stacks.
    pub fn wnd() -> Self {
        ModelConfig {
            name: "WND",
            class: ModelClass::MlpDominated,
            tables: 4,
            rows_per_table: 1_000_000,
            dim: 32,
            lookups_per_table: 1,
            quant: Quantization::F32,
            bottom_mlp: MlpSpec::new(vec![1024, 2048, 1024]),
            top_mlp: MlpSpec::new(vec![1152, 2048, 1024, 1]),
            extra_flops_per_sample: 2.0e6,
        }
    }

    /// Multi-Task Wide & Deep: WND with additional per-task heads.
    pub fn mtwnd() -> Self {
        ModelConfig {
            name: "MTWND",
            class: ModelClass::MlpDominated,
            tables: 6,
            rows_per_table: 1_000_000,
            dim: 32,
            lookups_per_table: 1,
            quant: Quantization::F32,
            bottom_mlp: MlpSpec::new(vec![1024, 2048, 1024]),
            top_mlp: MlpSpec::new(vec![1216, 2048, 1024, 1]),
            extra_flops_per_sample: 6.0e6, // extra task heads
        }
    }

    /// Deep Interest Network: attention over the user-behaviour sequence.
    pub fn din() -> Self {
        ModelConfig {
            name: "DIN",
            class: ModelClass::MlpDominated,
            tables: 4,
            rows_per_table: 1_000_000,
            dim: 64,
            lookups_per_table: 1,
            quant: Quantization::F32,
            bottom_mlp: MlpSpec::new(vec![256, 512, 256]),
            top_mlp: MlpSpec::new(vec![512, 1024, 512, 1]),
            // Attention over a 64-step history at dim 64.
            extra_flops_per_sample: 8.0e6,
        }
    }

    /// Deep Interest Evolution Network: GRU-based interest evolution —
    /// the most compute-heavy of the MLP-dominated set, and the one with
    /// the longest history lookups (hence its 1.09× SSD sensitivity in
    /// Fig. 6).
    pub fn dien() -> Self {
        ModelConfig {
            name: "DIEN",
            class: ModelClass::MlpDominated,
            tables: 2,
            rows_per_table: 1_000_000,
            dim: 64,
            lookups_per_table: 4, // pooled user-behaviour history
            quant: Quantization::F32,
            bottom_mlp: MlpSpec::new(vec![256, 512, 256]),
            top_mlp: MlpSpec::new(vec![384, 1024, 512, 1]),
            // Two GRU passes over the history.
            extra_flops_per_sample: 16.0e6,
        }
    }

    /// Neural Collaborative Filtering: user/item embeddings into an MLP.
    pub fn ncf() -> Self {
        ModelConfig {
            name: "NCF",
            class: ModelClass::MlpDominated,
            tables: 2,
            rows_per_table: 1_000_000,
            dim: 64,
            lookups_per_table: 1,
            quant: Quantization::F32,
            bottom_mlp: MlpSpec::new(vec![256, 1024, 512]),
            top_mlp: MlpSpec::new(vec![640, 2048, 1024, 1]),
            extra_flops_per_sample: 1.0e6,
        }
    }

    /// All eight models in the paper's presentation order.
    pub fn zoo() -> Vec<ModelConfig> {
        vec![
            ModelConfig::wnd(),
            ModelConfig::mtwnd(),
            ModelConfig::din(),
            ModelConfig::dien(),
            ModelConfig::ncf(),
            ModelConfig::dlrm_rmc1(),
            ModelConfig::dlrm_rmc2(),
            ModelConfig::dlrm_rmc3(),
        ]
    }

    /// The three Table 1 rows (RM1/RM2/RM3).
    pub fn table1() -> [ModelConfig; 3] {
        [
            ModelConfig::dlrm_rmc1(),
            ModelConfig::dlrm_rmc2(),
            ModelConfig::dlrm_rmc3(),
        ]
    }

    /// Total embedding lookups for one batch.
    pub fn lookups(&self, batch: usize) -> usize {
        self.tables * self.lookups_per_table * batch
    }

    /// Total dense FLOPs for one batch (both MLPs plus extras).
    pub fn dense_flops(&self, batch: usize) -> f64 {
        self.bottom_mlp.flops(batch)
            + self.top_mlp.flops(batch)
            + self.extra_flops_per_sample * batch as f64
    }

    /// Total dense bytes for one batch.
    pub fn dense_bytes(&self, batch: usize) -> f64 {
        self.bottom_mlp.bytes(batch) + self.top_mlp.bytes(batch)
    }

    /// A copy with reduced table sizes (for fast unit tests; access
    /// patterns, not absolute table size, drive the results — §6.4 "We
    /// specifically note that absolute table size does not impact our
    /// results").
    pub fn scaled_tables(mut self, rows: u64) -> Self {
        self.rows_per_table = rows;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_has_eight_models_with_unique_names() {
        let zoo = ModelConfig::zoo();
        assert_eq!(zoo.len(), 8);
        let names: std::collections::HashSet<_> = zoo.iter().map(|m| m.name).collect();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn table1_matches_the_paper() {
        let [rm1, rm2, rm3] = ModelConfig::table1();
        assert_eq!((rm1.dim, rm1.lookups_per_table, rm1.tables), (32, 80, 8));
        assert_eq!((rm2.dim, rm2.lookups_per_table, rm2.tables), (64, 120, 32));
        assert_eq!((rm3.dim, rm3.lookups_per_table, rm3.tables), (32, 20, 10));
    }

    #[test]
    fn classes_split_three_five() {
        let zoo = ModelConfig::zoo();
        let emb = zoo
            .iter()
            .filter(|m| m.class == ModelClass::EmbeddingDominated)
            .count();
        assert_eq!(emb, 3);
        assert_eq!(zoo.len() - emb, 5);
    }

    #[test]
    fn embedding_dominated_models_have_high_lookup_to_flop_ratio() {
        // The defining property: lookups per unit of dense compute is
        // orders of magnitude higher for the RMC models.
        let ratio = |m: &ModelConfig| m.lookups(64) as f64 / m.dense_flops(64);
        let rm1 = ratio(&ModelConfig::dlrm_rmc1());
        let wnd = ratio(&ModelConfig::wnd());
        assert!(rm1 > 100.0 * wnd, "RM1 ratio {rm1:e} vs WND {wnd:e}");
    }

    #[test]
    fn top_mlp_inputs_match_interaction_width() {
        // Bottom output + concatenated table reductions must equal the top
        // MLP input (sum-pooled per table, concatenated across tables).
        for m in ModelConfig::zoo() {
            let interaction = m.bottom_mlp.output_dim() + m.tables * m.dim;
            assert_eq!(
                m.top_mlp.input_dim(),
                interaction,
                "{}: top input {} vs interaction {}",
                m.name,
                m.top_mlp.input_dim(),
                interaction
            );
        }
    }

    #[test]
    fn scaled_tables_only_changes_rows() {
        let m = ModelConfig::dlrm_rmc1().scaled_tables(1000);
        assert_eq!(m.rows_per_table, 1000);
        assert_eq!(m.tables, 8);
    }
}
