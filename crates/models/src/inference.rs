//! End-to-end inference execution on the simulated system.

use recssd::{LookupBatch, OpId, OpKind, SlsOptions, System, TableId};
use recssd_embedding::{EmbeddingTable, PageLayout, TableImage, TableSpec};
use recssd_sim::rng::Xoshiro256;
use recssd_sim::{SimDuration, SimTime};
use recssd_trace::{LocalityK, LocalityTrace};

use crate::ModelConfig;

/// Where a model's embedding lookups execute.
#[derive(Debug, Clone)]
pub enum EmbeddingMode {
    /// Tables in host DRAM (the paper's DRAM baseline).
    Dram,
    /// Tables on SSD, conventional reads + host accumulation.
    BaselineSsd(SlsOptions),
    /// Tables on SSD, RecSSD NDP offload.
    Ndp(SlsOptions),
}

/// Deterministic per-table lookup-id generator for inference batches.
#[derive(Debug)]
pub enum BatchGen {
    /// Uniform random ids (the paper's "randomly generated input indices"
    /// used for Fig. 9).
    Uniform {
        /// Generator state.
        rng: Xoshiro256,
    },
    /// The locality-K trace model of §5, one stream per table.
    Locality {
        /// Per-table trace generators.
        traces: Vec<LocalityTrace>,
    },
    /// Strided ids, one page per id (the STR microbenchmark pattern).
    Strided {
        /// Stride between consecutive ids.
        stride: u64,
        /// Per-table cursors.
        cursors: Vec<u64>,
    },
    /// Sequential ids (the SEQ microbenchmark pattern).
    Sequential {
        /// Per-table cursors.
        cursors: Vec<u64>,
    },
}

impl BatchGen {
    /// Uniform generator.
    pub fn uniform(seed: u64) -> Self {
        BatchGen::Uniform {
            rng: Xoshiro256::seed_from(seed),
        }
    }

    /// Locality-K generator with one decorrelated stream per table.
    pub fn locality(rows: u64, k: LocalityK, tables: usize, seed: u64) -> Self {
        BatchGen::Locality {
            traces: (0..tables)
                .map(|t| LocalityTrace::with_k(rows, k, seed.wrapping_add(t as u64 * 7919)))
                .collect(),
        }
    }

    /// Strided generator (`stride` rows apart, wrapping).
    pub fn strided(stride: u64, tables: usize) -> Self {
        BatchGen::Strided {
            stride,
            cursors: vec![0; tables],
        }
    }

    /// Sequential generator.
    pub fn sequential(tables: usize) -> Self {
        BatchGen::Sequential {
            cursors: vec![0; tables],
        }
    }

    /// Draws a batch of `outputs × lookups` ids for `table_idx`.
    pub fn batch(
        &mut self,
        table_idx: usize,
        outputs: usize,
        lookups: usize,
        rows: u64,
    ) -> LookupBatch {
        let mut next = |table_idx: usize| -> u64 {
            match self {
                BatchGen::Uniform { rng } => rng.gen_range(0..rows),
                BatchGen::Locality { traces } => traces[table_idx].next_id(),
                BatchGen::Strided { stride, cursors } => {
                    let id = cursors[table_idx];
                    cursors[table_idx] = (id + *stride) % rows;
                    id
                }
                BatchGen::Sequential { cursors } => {
                    let id = cursors[table_idx];
                    cursors[table_idx] = (id + 1) % rows;
                    id
                }
            }
        };
        LookupBatch::new(
            (0..outputs)
                .map(|_| (0..lookups).map(|_| next(table_idx)).collect())
                .collect(),
        )
    }
}

/// Timings of one inference.
#[derive(Debug, Clone)]
pub struct InferenceResult {
    /// End-to-end latency: first submission to top-MLP completion.
    pub latency: SimDuration,
    /// Longest single embedding operator (service time).
    pub embed_time: SimDuration,
    /// Bottom-MLP service time.
    pub bottom_time: SimDuration,
    /// Top-MLP (+ extra compute) service time.
    pub top_time: SimDuration,
    /// The per-table SLS operator ids (for output inspection).
    pub sls_ops: Vec<OpId>,
    /// When the top MLP finished.
    pub finished: SimTime,
}

/// A model's tables materialised on a [`System`].
#[derive(Debug)]
pub struct ModelInstance {
    cfg: ModelConfig,
    tables: Vec<TableId>,
}

impl ModelInstance {
    /// Registers the model's embedding tables (procedural contents,
    /// decorrelated by `seed`) with the given on-SSD layout.
    ///
    /// §5 of the paper uses the one-vector-per-page layout
    /// ([`PageLayout::Spread`]) for all model evaluations.
    pub fn build(sys: &mut System, cfg: ModelConfig, layout: PageLayout, seed: u64) -> Self {
        let page_bytes = sys.config().ssd.block_bytes();
        let tables = (0..cfg.tables)
            .map(|t| {
                let spec = TableSpec::new(cfg.rows_per_table, cfg.dim, cfg.quant);
                let table = EmbeddingTable::procedural(spec, seed.wrapping_add(t as u64 * 0x9E37));
                sys.add_table(TableImage::new(table, layout, page_bytes))
            })
            .collect();
        ModelInstance { cfg, tables }
    }

    /// The model's configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The registered table ids, in table order.
    pub fn tables(&self) -> &[TableId] {
        &self.tables
    }

    fn sls_op(&self, mode: &EmbeddingMode, table: TableId, batch: LookupBatch) -> OpKind {
        match mode {
            EmbeddingMode::Dram => OpKind::dram_sls(table, batch),
            EmbeddingMode::BaselineSsd(opts) => OpKind::baseline_sls(table, batch, *opts),
            EmbeddingMode::Ndp(opts) => OpKind::ndp_sls(table, batch, *opts),
        }
    }

    /// Submits one inference's operator graph without running it:
    /// bottom MLP ∥ per-table SLS → top MLP. Returns
    /// `(sls ops, bottom, top)`.
    pub fn submit_inference(
        &self,
        sys: &mut System,
        batch: usize,
        mode: &EmbeddingMode,
        gen: &mut BatchGen,
    ) -> (Vec<OpId>, OpId, OpId) {
        let cfg = &self.cfg;
        let bottom = sys.submit(OpKind::host_compute(
            cfg.bottom_mlp.flops(batch),
            cfg.bottom_mlp.bytes(batch),
        ));
        let sls: Vec<OpId> = self
            .tables
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let b = gen.batch(i, batch, cfg.lookups_per_table, cfg.rows_per_table);
                sys.submit(self.sls_op(mode, t, b))
            })
            .collect();
        let mut deps = sls.clone();
        deps.push(bottom);
        let top = sys.submit_after(
            OpKind::host_compute(
                cfg.top_mlp.flops(batch) + cfg.extra_flops_per_sample * batch as f64,
                cfg.top_mlp.bytes(batch),
            ),
            &deps,
        );
        (sls, bottom, top)
    }

    /// Runs one inference to completion and reports its timings.
    pub fn run_inference(
        &self,
        sys: &mut System,
        batch: usize,
        mode: &EmbeddingMode,
        gen: &mut BatchGen,
    ) -> InferenceResult {
        let submit_t = sys.now();
        let (sls, bottom, top) = self.submit_inference(sys, batch, mode, gen);
        sys.run_until_idle();
        let embed_time = sls
            .iter()
            .map(|&op| sys.result(op).service_time())
            .max()
            .unwrap_or(SimDuration::ZERO);
        InferenceResult {
            latency: sys.result(top).finished.saturating_since(submit_t),
            embed_time,
            bottom_time: sys.result(bottom).service_time(),
            top_time: sys.result(top).service_time(),
            sls_ops: sls,
            finished: sys.result(top).finished,
        }
    }

    /// Runs `n_batches` inferences submitted back-to-back (the paper's
    /// multi-threaded, pipelined serving mode: SLS workers overlap with
    /// NN workers across batches). Returns `(makespan, mean latency)`.
    pub fn run_pipelined(
        &self,
        sys: &mut System,
        batch: usize,
        n_batches: usize,
        mode: &EmbeddingMode,
        gen: &mut BatchGen,
    ) -> (SimDuration, SimDuration) {
        let start = sys.now();
        let tops: Vec<OpId> = (0..n_batches)
            .map(|_| self.submit_inference(sys, batch, mode, gen).2)
            .collect();
        sys.run_until_idle();
        let mut total = SimDuration::ZERO;
        let mut last = start;
        for top in tops {
            let r = sys.result(top);
            total += r.finished.saturating_since(r.submitted);
            last = last.max(r.finished);
        }
        (
            last.saturating_since(start),
            total / n_batches.max(1) as u64,
        )
    }
}
