//! Fully connected stacks: cost model and a small functional forward.

use recssd_sim::rng::Xoshiro256;

/// A stack of fully connected layers described by its widths, e.g.
/// `[256, 128, 32]` maps a 256-feature input to 32 features through one
/// hidden layer.
///
/// # Example
///
/// ```
/// use recssd_models::MlpSpec;
/// let mlp = MlpSpec::new(vec![8, 4, 1]);
/// assert_eq!(mlp.input_dim(), 8);
/// assert_eq!(mlp.output_dim(), 1);
/// // 2 FLOPs per MAC: (8*4 + 4*1) * 2 per sample.
/// assert_eq!(mlp.flops(1), 72.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpSpec {
    widths: Vec<usize>,
}

impl MlpSpec {
    /// Creates a spec from layer widths.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two widths or a zero width.
    pub fn new(widths: Vec<usize>) -> Self {
        assert!(widths.len() >= 2, "an MLP needs input and output widths");
        assert!(widths.iter().all(|&w| w > 0), "zero-width layer");
        MlpSpec { widths }
    }

    /// The layer widths.
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }

    /// Input feature count.
    pub fn input_dim(&self) -> usize {
        self.widths[0]
    }

    /// Output feature count.
    pub fn output_dim(&self) -> usize {
        *self.widths.last().expect("non-empty")
    }

    /// Dense FLOPs for a batch (2 FLOPs per multiply-accumulate).
    pub fn flops(&self, batch: usize) -> f64 {
        let per_sample: f64 = self
            .widths
            .windows(2)
            .map(|w| 2.0 * w[0] as f64 * w[1] as f64)
            .sum();
        per_sample * batch as f64
    }

    /// Bytes streamed for a batch: weights once plus activations per
    /// sample (f32).
    pub fn bytes(&self, batch: usize) -> f64 {
        let weights: f64 = self
            .widths
            .windows(2)
            .map(|w| 4.0 * w[0] as f64 * w[1] as f64)
            .sum();
        let activations: f64 = self.widths.iter().map(|&w| 4.0 * w as f64).sum();
        weights + activations * batch as f64
    }

    /// Weight count across all layers (excluding biases).
    pub fn weights(&self) -> usize {
        self.widths.windows(2).map(|w| w[0] * w[1]).sum()
    }

    /// A real forward pass with procedurally generated weights (ReLU
    /// between layers, none after the last). Used by examples and
    /// functional tests; experiment timing comes from the cost model.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != input_dim()`.
    pub fn forward(&self, input: &[f32], seed: u64) -> Vec<f32> {
        assert_eq!(input.len(), self.input_dim(), "input width mismatch");
        let mut rng = Xoshiro256::seed_from(seed);
        let mut x: Vec<f32> = input.to_vec();
        for (li, w) in self.widths.windows(2).enumerate() {
            let (n_in, n_out) = (w[0], w[1]);
            let last = li + 2 == self.widths.len();
            let mut y = vec![0.0f32; n_out];
            for o in y.iter_mut() {
                let mut acc = 0.0f32;
                for &xi in x.iter().take(n_in) {
                    // Small deterministic weights in (-0.5, 0.5).
                    let wgt = (rng.next_f64() - 0.5) as f32;
                    acc += xi * wgt;
                }
                *o = if last { acc } else { acc.max(0.0) };
            }
            x = y;
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_and_bytes_scale_with_batch() {
        let mlp = MlpSpec::new(vec![128, 64, 1]);
        assert_eq!(mlp.flops(2), 2.0 * mlp.flops(1));
        assert!(mlp.bytes(2) < 2.0 * mlp.bytes(1), "weights amortise");
        assert_eq!(mlp.weights(), 128 * 64 + 64);
    }

    #[test]
    fn forward_is_deterministic_and_shaped() {
        let mlp = MlpSpec::new(vec![4, 8, 2]);
        let a = mlp.forward(&[1.0, -1.0, 0.5, 2.0], 7);
        let b = mlp.forward(&[1.0, -1.0, 0.5, 2.0], 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        let c = mlp.forward(&[1.0, -1.0, 0.5, 2.0], 8);
        assert_ne!(a, c, "different seeds give different weights");
    }

    #[test]
    fn hidden_layers_are_rectified() {
        let mlp = MlpSpec::new(vec![2, 16, 16, 4]);
        // With ReLU the hidden activations are non-negative; the output
        // layer is linear so outputs may be negative. Just verify the
        // forward runs on a deeper stack and produces finite values.
        let out = mlp.forward(&[0.3, -0.7], 1);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        MlpSpec::new(vec![3, 1]).forward(&[1.0], 0);
    }

    #[test]
    #[should_panic(expected = "needs input and output")]
    fn single_width_rejected() {
        MlpSpec::new(vec![3]);
    }
}
