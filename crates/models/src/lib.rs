//! DeepRecInfra-equivalent recommendation model zoo and end-to-end
//! inference engine.
//!
//! The paper evaluates RecSSD on "a diverse set of eight
//! industry-representative recommendation models provided in
//! DeepRecInfra" (§5), clustered into two classes (§3.3):
//!
//! * **MLP-dominated** — Wide&Deep (WND), Multi-Task Wide&Deep (MTWND),
//!   Deep Interest Network (DIN), Deep Interest Evolution Network (DIEN)
//!   and Neural Collaborative Filtering (NCF): execution time is dense
//!   matrix compute; storing embeddings on SSD barely matters
//!   (1.01–1.09× in Fig. 6).
//! * **Embedding-dominated** — DLRM-RMC1/RMC2/RMC3: dominated by sparse
//!   embedding gathers; SSD storage slows them by orders of magnitude,
//!   which is the gap RecSSD attacks. Their differentiating parameters
//!   are the paper's Table 1 (feature size / indices per lookup / table
//!   count), reproduced by [`ModelConfig::table1`].
//!
//! [`ModelInstance`] materialises a config's embedding tables on the
//! simulated device and [`ModelInstance::run_inference`] executes the
//! model graph — bottom MLP ∥ per-table SLS, then the
//! feature-interaction + top MLP — on the [`recssd::System`] virtual
//! clock, with the embedding path selected by [`EmbeddingMode`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod inference;
mod mlp;
mod zoo;

pub use inference::{BatchGen, EmbeddingMode, InferenceResult, ModelInstance};
pub use mlp::MlpSpec;
pub use zoo::{ModelClass, ModelConfig};
