//! Model-level behaviour: the embedding-vs-MLP dichotomy of Fig. 6, NDP
//! end-to-end correctness, and pipelining overlap.

use recssd::{OpKind, RecSsdConfig, SlsOptions, System};
use recssd_embedding::PageLayout;
use recssd_models::{BatchGen, EmbeddingMode, ModelConfig, ModelInstance};

/// A config large enough for several small tables.
fn sys_with_tables() -> System {
    System::new(RecSsdConfig::small_wide())
}

fn small(cfg: ModelConfig) -> ModelConfig {
    cfg.scaled_tables(1000)
}

#[test]
fn embedding_dominated_models_collapse_on_ssd_but_mlp_models_do_not() {
    // The Fig. 6 dichotomy, at test scale: batch 4, 1000-row tables.
    let ratio = |cfg: ModelConfig| -> f64 {
        let mut sys = sys_with_tables();
        let model = ModelInstance::build(&mut sys, cfg, PageLayout::Spread, 1);
        let mut gen = BatchGen::uniform(11);
        let dram = model.run_inference(&mut sys, 4, &EmbeddingMode::Dram, &mut gen);
        sys.device_mut().ftl_mut().drop_caches();
        let ssd = model.run_inference(
            &mut sys,
            4,
            &EmbeddingMode::BaselineSsd(SlsOptions::default()),
            &mut gen,
        );
        ssd.latency.as_ns() as f64 / dram.latency.as_ns() as f64
    };
    let rm1 = ratio(small(ModelConfig::dlrm_rmc1()));
    let wnd = ratio(small(ModelConfig::wnd()));
    let ncf = ratio(small(ModelConfig::ncf()));
    assert!(rm1 > 10.0, "RM1 must collapse on SSD: {rm1:.2}x");
    assert!(wnd < 2.0, "WND must tolerate SSD: {wnd:.2}x");
    assert!(ncf < 2.0, "NCF must tolerate SSD: {ncf:.2}x");
    assert!(rm1 > 5.0 * wnd, "dichotomy must be stark");
}

#[test]
fn ndp_end_to_end_outputs_match_dram() {
    let mut sys = sys_with_tables();
    let model = ModelInstance::build(
        &mut sys,
        small(ModelConfig::dlrm_rmc3()),
        PageLayout::Spread,
        3,
    );
    // Same generator seeds so both runs draw identical batches.
    let mut gen_a = BatchGen::uniform(5);
    let mut gen_b = BatchGen::uniform(5);
    let ndp = model.run_inference(
        &mut sys,
        4,
        &EmbeddingMode::Ndp(SlsOptions::default()),
        &mut gen_a,
    );
    let dram = model.run_inference(&mut sys, 4, &EmbeddingMode::Dram, &mut gen_b);
    for (a, b) in ndp.sls_ops.iter().zip(&dram.sls_ops) {
        assert_eq!(
            sys.result(*a).outputs,
            sys.result(*b).outputs,
            "embedding outputs must be identical"
        );
    }
}

#[test]
fn ndp_speeds_up_embedding_dominated_models() {
    // Fig. 9's naive-configuration effect at test scale.
    let mut sys = sys_with_tables();
    let model = ModelInstance::build(
        &mut sys,
        small(ModelConfig::dlrm_rmc1()),
        PageLayout::Spread,
        7,
    );
    let mut gen = BatchGen::uniform(13);
    let base = model.run_inference(
        &mut sys,
        4,
        &EmbeddingMode::BaselineSsd(SlsOptions::naive()),
        &mut gen,
    );
    sys.device_mut().ftl_mut().drop_caches();
    let ndp = model.run_inference(
        &mut sys,
        4,
        &EmbeddingMode::Ndp(SlsOptions::naive()),
        &mut gen,
    );
    let speedup = base.latency.as_ns() as f64 / ndp.latency.as_ns() as f64;
    assert!(
        speedup > 2.0,
        "NDP should speed up RM1 substantially: {speedup:.2}x"
    );
}

#[test]
fn inference_times_decompose_sensibly() {
    let mut sys = sys_with_tables();
    let model = ModelInstance::build(
        &mut sys,
        small(ModelConfig::dlrm_rmc3()),
        PageLayout::Spread,
        9,
    );
    let mut gen = BatchGen::uniform(17);
    let r = model.run_inference(
        &mut sys,
        2,
        &EmbeddingMode::Ndp(SlsOptions::default()),
        &mut gen,
    );
    assert!(r.embed_time > recssd_sim::SimDuration::ZERO);
    assert!(r.bottom_time > recssd_sim::SimDuration::ZERO);
    assert!(r.top_time > recssd_sim::SimDuration::ZERO);
    // The top MLP runs after everything else, so latency covers at least
    // the longest of (embed, bottom) plus top.
    assert!(r.latency >= r.top_time);
    assert!(r.latency >= r.embed_time.max(r.bottom_time));
}

#[test]
fn pipelining_overlaps_batches() {
    // With SLS and NN pools, N batches of an MLP-heavy model must take
    // well under N sequential latencies (§4.2: "Multi-threading and
    // software pipelining can be used to overlap NDP SLS I/O operations
    // with the rest of the neural network computation"). Device-bound
    // embedding models cannot overlap their device time, so this effect
    // is demonstrated on WND.
    let mut sys = sys_with_tables();
    let model = ModelInstance::build(&mut sys, small(ModelConfig::wnd()), PageLayout::Spread, 21);
    let mode = EmbeddingMode::Ndp(SlsOptions::default());
    let mut gen = BatchGen::uniform(23);
    let single = model.run_inference(&mut sys, 8, &mode, &mut gen);
    let n = 6;
    let (makespan, mean_latency) = model.run_pipelined(&mut sys, 8, n, &mode, &mut gen);
    assert!(
        makespan.as_ns() < single.latency.as_ns() * n as u64 * 7 / 10,
        "pipelining must overlap: makespan {makespan} vs {n}x {}",
        single.latency
    );
    assert!(
        mean_latency >= single.latency / 2,
        "sanity on per-batch latency"
    );
}

#[test]
fn batch_generators_are_deterministic_and_in_range() {
    let rows = 500;
    for mk in [
        || BatchGen::uniform(3),
        || BatchGen::locality(500, recssd_trace::LocalityK::K1, 2, 3),
        || BatchGen::strided(128, 2),
        || BatchGen::sequential(2),
    ] {
        let mut a = mk();
        let mut b = mk();
        let ba = a.batch(1, 3, 7, rows);
        let bb = b.batch(1, 3, 7, rows);
        assert_eq!(ba, bb);
        assert!(ba
            .per_output()
            .iter()
            .all(|ids| ids.iter().all(|&id| id < rows)));
    }
}

#[test]
fn strided_generator_walks_pages() {
    let mut g = BatchGen::strided(128, 1);
    let b = g.batch(0, 1, 4, 100_000);
    assert_eq!(b.per_output()[0], vec![0, 128, 256, 384]);
}

#[test]
fn mlp_compute_occupies_nn_pool_not_sls_pool() {
    let mut sys = sys_with_tables();
    let a = sys.submit(OpKind::host_compute(1e9, 1e6));
    let b = sys.submit(OpKind::host_compute(1e9, 1e6));
    sys.run_until_idle();
    // Two NN workers exist (4 by default), so these overlap fully.
    let ra = sys.result(a).clone();
    let rb = sys.result(b).clone();
    assert_eq!(ra.started, rb.started, "parallel NN workers");
}
