//! NAND flash array model for the RecSSD reproduction.
//!
//! Models the flash subsystem of a Cosmos+ OpenSSD-class device at the level
//! the paper's results depend on:
//!
//! * **Geometry** ([`FlashGeometry`]): channels × dies × blocks × pages, with
//!   16 KB pages by default.
//! * **Timing** ([`FlashTiming`]): NAND array read (tR), program (tPROG),
//!   erase (tERASE) occupy a *die*; moving a page over the channel bus
//!   occupies the *channel*. Dies on one channel overlap their array
//!   operations; the shared bus serialises transfers, which is what caps a
//!   channel at ~10 K random-read IOPS as §5 of the paper reports.
//! * **Data** ([`PageStore`]): pages hold real bytes. Large preloaded
//!   regions (multi-GB embedding tables) can be backed by a [`PageOracle`]
//!   that synthesises page contents on demand, so simulating a 16 GB table
//!   image does not need 16 GB of host RAM.
//!
//! The array is driven by the caller's event loop: [`FlashArray::submit`]
//! enqueues an operation and [`FlashArray::handle`] advances it when one of
//! the array's own [`FlashEvent`]s fires. The caller supplies a scheduling
//! closure which maps flash events into its global event queue.
//!
//! # Example
//!
//! ```
//! use recssd_flash::{FlashArray, FlashConfig, FlashEvent, FlashOp, Ppa};
//! use recssd_sim::EventQueue;
//!
//! let cfg = FlashConfig::cosmos_small();
//! let mut flash = FlashArray::new(cfg);
//! let mut queue: EventQueue<FlashEvent> = EventQueue::new();
//!
//! let ppa = Ppa { channel: 0, die: 0, block: 0, page: 0 };
//! flash
//!     .submit(
//!         queue.now(),
//!         FlashOp::Program { ppa, data: vec![7u8; 64].into_boxed_slice() },
//!         &mut |delay, ev| queue.push_after(delay, ev),
//!     )
//!     .unwrap();
//! let mut done = Vec::new();
//! while let Some((now, ev)) = queue.pop() {
//!     let mut pending = Vec::new();
//!     if let Some(c) = flash.handle(now, ev, &mut |d, e| pending.push((d, e))) {
//!         done.push(c);
//!     }
//!     for (d, e) in pending {
//!         queue.push_after(d, e);
//!     }
//! }
//! assert_eq!(done.len(), 1);
//! assert_eq!(flash.page_bytes_prefix(ppa, 3), vec![7, 7, 7]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod array;
mod fault;
mod geometry;
mod page_store;
mod timing;

pub use array::{
    FlashArray, FlashCompletion, FlashError, FlashEvent, FlashOp, FlashOpId, FlashOpKind,
    FlashStats,
};
pub use fault::{BrownoutWindow, FaultConfig, FaultPlan, FaultStats, ReadFault};
pub use geometry::{FlashGeometry, Ppa};
pub use page_store::{PageOracle, PageStore};
pub use timing::FlashTiming;

/// Full configuration of a flash array: geometry plus timing.
#[derive(Debug, Clone, PartialEq)]
pub struct FlashConfig {
    /// Physical organisation of the array.
    pub geometry: FlashGeometry,
    /// Operation latencies and bus speed.
    pub timing: FlashTiming,
}

impl FlashConfig {
    /// The Cosmos+ OpenSSD-like configuration used for all paper
    /// experiments: 8 channels, 16 KB pages, ~10 K IOPS per channel,
    /// ~1.3 GB/s aggregate sequential read.
    pub fn cosmos() -> Self {
        FlashConfig {
            geometry: FlashGeometry::cosmos(),
            timing: FlashTiming::cosmos(),
        }
    }

    /// A small geometry with Cosmos+ timing, convenient for unit tests
    /// (a few MiB of address space instead of hundreds of GB).
    pub fn cosmos_small() -> Self {
        FlashConfig {
            geometry: FlashGeometry {
                channels: 2,
                dies_per_channel: 2,
                blocks_per_die: 64,
                pages_per_block: 16,
                page_bytes: 16 * 1024,
            },
            timing: FlashTiming::cosmos(),
        }
    }
}
