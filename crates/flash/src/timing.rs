//! NAND operation latencies and channel bus speed.

use recssd_sim::SimDuration;

/// Timing parameters of the NAND array.
///
/// The model distinguishes the *die* (where tR/tPROG/tERASE execute, one
/// operation per die at a time, dies independent) from the *channel bus*
/// (which serialises page transfers between the controller and all dies on
/// the channel). §5 of the paper gives the derived figures this preset is
/// calibrated against: ≈10 K IOPS per channel, eight channels, and "just
/// under 1.4 GB/s" maximum sequential read.
///
/// # Example
///
/// ```
/// use recssd_flash::FlashTiming;
/// let t = FlashTiming::cosmos();
/// let xfer = t.transfer_time(16 * 1024);
/// // One page moves over the bus in ~96 us => ~10.4K IOPS per channel.
/// assert!(xfer.as_us_f64() > 90.0 && xfer.as_us_f64() < 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashTiming {
    /// NAND array read time (tR): command issue to data ready in the die's
    /// page register.
    pub read_ns: u64,
    /// NAND program time (tPROG).
    pub program_ns: u64,
    /// Block erase time (tERASE).
    pub erase_ns: u64,
    /// Channel bus bandwidth in bytes per second (shared by all dies on the
    /// channel).
    pub channel_bytes_per_sec: f64,
    /// Fixed per-operation command/addressing overhead on the channel.
    pub cmd_overhead_ns: u64,
}

impl FlashTiming {
    /// Cosmos+ OpenSSD-like timing (see crate docs for calibration).
    pub fn cosmos() -> Self {
        FlashTiming {
            read_ns: 60_000,              // tR = 60 us
            program_ns: 600_000,          // tPROG = 600 us
            erase_ns: 3_000_000,          // tERASE = 3 ms
            channel_bytes_per_sec: 175e6, // ~175 MB/s bus => 16 KB in ~94 us
            cmd_overhead_ns: 2_000,
        }
    }

    /// Time to move `bytes` over the channel bus, including the fixed
    /// command overhead.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        let xfer_ns = (bytes as f64 / self.channel_bytes_per_sec) * 1e9;
        SimDuration::from_ns(self.cmd_overhead_ns + xfer_ns.round() as u64)
    }

    /// NAND array read time as a duration.
    pub fn read_time(&self) -> SimDuration {
        SimDuration::from_ns(self.read_ns)
    }

    /// NAND program time as a duration.
    pub fn program_time(&self) -> SimDuration {
        SimDuration::from_ns(self.program_ns)
    }

    /// Block erase time as a duration.
    pub fn erase_time(&self) -> SimDuration {
        SimDuration::from_ns(self.erase_ns)
    }

    /// Steady-state random-read throughput of one channel in IOPS for the
    /// given page size (bus-bound, assuming enough dies to hide tR).
    pub fn channel_read_iops(&self, page_bytes: usize) -> f64 {
        1e9 / self.transfer_time(page_bytes).as_ns() as f64
    }

    /// Extra die time an ECC retry burst costs: `extra_reads` additional
    /// array senses, each paying the command overhead plus tR. Used by the
    /// fault model for transient read errors that succeed on re-read.
    pub fn ecc_retry_time(&self, extra_reads: u32) -> SimDuration {
        SimDuration::from_ns((self.cmd_overhead_ns + self.read_ns) * extra_reads as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosmos_matches_paper_derived_figures() {
        let t = FlashTiming::cosmos();
        let iops = t.channel_read_iops(16 * 1024);
        // §5: "10K IOPs per channel".
        assert!(
            (9_000.0..12_000.0).contains(&iops),
            "per-channel IOPS was {iops}"
        );
        // §5: 8 channels => "just under 1.4GB/s" sequential.
        let seq_gbps = iops * 8.0 * 16.0 * 1024.0 / 1e9;
        assert!(
            (1.2..1.4).contains(&seq_gbps),
            "aggregate sequential GB/s was {seq_gbps}"
        );
    }

    #[test]
    fn single_page_latency_in_tens_to_hundreds_of_us() {
        // §5: "Single page access latencies are in the 10s to 100s of
        // microseconds range."
        let t = FlashTiming::cosmos();
        let total = t.read_time() + t.transfer_time(16 * 1024);
        assert!(total.as_us_f64() > 10.0 && total.as_us_f64() < 1000.0);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let t = FlashTiming::cosmos();
        let small = t.transfer_time(1024);
        let big = t.transfer_time(4096);
        assert!(big > small);
        // Zero bytes still pays command overhead.
        assert_eq!(t.transfer_time(0).as_ns(), t.cmd_overhead_ns);
    }

    #[test]
    fn ecc_retry_time_scales_with_extra_reads() {
        let t = FlashTiming::cosmos();
        assert_eq!(t.ecc_retry_time(0), SimDuration::ZERO);
        assert_eq!(
            t.ecc_retry_time(3).as_ns(),
            3 * (t.cmd_overhead_ns + t.read_ns)
        );
    }

    #[test]
    fn writes_are_order_milliseconds() {
        // §2.2: "writes to flash memory are often much slower, incurring
        // O(ms) latencies" — tPROG + tERASE amortisation lands there.
        let t = FlashTiming::cosmos();
        assert!(t.program_time().as_ms_f64() >= 0.5);
        assert!(t.erase_time().as_ms_f64() >= 1.0);
    }
}
