//! Physical organisation of the NAND array and physical page addressing.

use std::fmt;

/// Physical shape of the flash array.
///
/// # Example
///
/// ```
/// use recssd_flash::FlashGeometry;
/// let g = FlashGeometry::cosmos();
/// assert_eq!(g.channels, 8);
/// assert_eq!(g.page_bytes, 16 * 1024);
/// assert!(g.capacity_bytes() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlashGeometry {
    /// Number of independent channels (shared buses).
    pub channels: u32,
    /// NAND dies attached to each channel.
    pub dies_per_channel: u32,
    /// Erase blocks per die.
    pub blocks_per_die: u32,
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Bytes per flash page (the device's atomic read/program unit).
    pub page_bytes: usize,
}

impl FlashGeometry {
    /// Cosmos+ OpenSSD-like geometry: 8 channels, 4 dies/channel, 16 KB
    /// pages, 2 TiB raw capacity (the development platform of §5 "has a
    /// 2TB capacity").
    pub fn cosmos() -> Self {
        FlashGeometry {
            channels: 8,
            dies_per_channel: 4,
            blocks_per_die: 16384,
            pages_per_block: 256,
            page_bytes: 16 * 1024,
        }
    }

    /// Total number of physical pages in the array.
    pub fn total_pages(&self) -> u64 {
        self.channels as u64
            * self.dies_per_channel as u64
            * self.blocks_per_die as u64
            * self.pages_per_block as u64
    }

    /// Total number of dies.
    pub fn total_dies(&self) -> u32 {
        self.channels * self.dies_per_channel
    }

    /// Total number of erase blocks.
    pub fn total_blocks(&self) -> u64 {
        self.total_dies() as u64 * self.blocks_per_die as u64
    }

    /// Raw capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_bytes as u64
    }

    /// `true` if `ppa` addresses a page inside this geometry.
    pub fn contains(&self, ppa: Ppa) -> bool {
        ppa.channel < self.channels
            && ppa.die < self.dies_per_channel
            && ppa.block < self.blocks_per_die
            && ppa.page < self.pages_per_block
    }

    /// Linearises a physical page address into `0..total_pages()` in
    /// *stripe order*: consecutive indices advance channel first, then die,
    /// then page/block. A contiguous index range therefore spreads across
    /// all channels and dies — the layout a log-structured FTL produces
    /// when bulk data is written sequentially, and the layout that lets
    /// the SSD exploit its internal parallelism (§2.2 of the paper:
    /// "logical blocks can be striped over multiple flash memory
    /// packages").
    ///
    /// # Panics
    ///
    /// Panics if `ppa` is outside the geometry.
    pub fn linear_index(&self, ppa: Ppa) -> u64 {
        assert!(self.contains(ppa), "ppa out of range: {ppa}");
        let counter = ppa.block as u64 * self.pages_per_block as u64 + ppa.page as u64;
        (counter * self.dies_per_channel as u64 + ppa.die as u64) * self.channels as u64
            + ppa.channel as u64
    }

    /// Inverse of [`FlashGeometry::linear_index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= total_pages()`.
    pub fn ppa_of_index(&self, index: u64) -> Ppa {
        assert!(index < self.total_pages(), "linear page index out of range");
        let channel = (index % self.channels as u64) as u32;
        let rest = index / self.channels as u64;
        let die = (rest % self.dies_per_channel as u64) as u32;
        let counter = rest / self.dies_per_channel as u64;
        let page = (counter % self.pages_per_block as u64) as u32;
        let block = (counter / self.pages_per_block as u64) as u32;
        Ppa {
            channel,
            die,
            block,
            page,
        }
    }

    /// The channel a stripe-ordered linear page index lands on — the
    /// channel→engine affinity key for per-channel compute engines.
    /// Identical to `ppa_of_index(index).channel` but defined for any
    /// index (it only takes the index modulo the channel count), so
    /// never-written logical pages still route deterministically.
    pub fn stripe_channel(&self, index: u64) -> u32 {
        (index % self.channels as u64) as u32
    }

    /// Linear index of a (channel, die, block) triple in `0..total_blocks()`.
    pub fn block_index(&self, channel: u32, die: u32, block: u32) -> u64 {
        (channel as u64 * self.dies_per_channel as u64 + die as u64) * self.blocks_per_die as u64
            + block as u64
    }
}

/// A physical page address.
///
/// # Example
///
/// ```
/// use recssd_flash::{FlashGeometry, Ppa};
/// let g = FlashGeometry::cosmos();
/// let ppa = Ppa { channel: 3, die: 1, block: 10, page: 42 };
/// assert_eq!(g.ppa_of_index(g.linear_index(ppa)), ppa);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ppa {
    /// Channel index.
    pub channel: u32,
    /// Die index within the channel.
    pub die: u32,
    /// Erase-block index within the die.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

impl fmt::Display for Ppa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}/die{}/blk{}/pg{}",
            self.channel, self.die, self.block, self.page
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosmos_capacity_is_2tib() {
        let g = FlashGeometry::cosmos();
        // 8 * 4 * 16384 * 256 pages * 16KB = 2 TiB, the Cosmos+ capacity.
        assert_eq!(g.total_pages(), 134_217_728);
        assert_eq!(g.capacity_bytes(), 2 * 1024 * 1024 * 1024 * 1024);
        assert_eq!(g.total_dies(), 32);
        assert_eq!(g.total_blocks(), 32 * 16384);
    }

    #[test]
    fn linear_index_round_trips() {
        let g = FlashGeometry {
            channels: 3,
            dies_per_channel: 2,
            blocks_per_die: 5,
            pages_per_block: 7,
            page_bytes: 512,
        };
        for idx in 0..g.total_pages() {
            let ppa = g.ppa_of_index(idx);
            assert!(g.contains(ppa));
            assert_eq!(g.linear_index(ppa), idx);
        }
    }

    #[test]
    fn linear_index_stripes_across_channels_first() {
        let g = FlashGeometry::cosmos();
        // Consecutive indices advance the channel, spreading a contiguous
        // region across all buses.
        for i in 0..g.channels as u64 {
            assert_eq!(g.ppa_of_index(i).channel, i as u32);
            assert_eq!(g.ppa_of_index(i).die, 0);
        }
        // After all channels, the die advances.
        assert_eq!(g.ppa_of_index(g.channels as u64).die, 1);
        // One full stripe (all channels × dies) later, the page advances.
        let stride = g.channels as u64 * g.dies_per_channel as u64;
        assert_eq!(g.ppa_of_index(stride).page, 1);
        assert_eq!(g.ppa_of_index(stride).channel, 0);
    }

    #[test]
    fn contains_rejects_out_of_range() {
        let g = FlashGeometry::cosmos();
        assert!(!g.contains(Ppa {
            channel: 8,
            die: 0,
            block: 0,
            page: 0
        }));
        assert!(!g.contains(Ppa {
            channel: 0,
            die: 4,
            block: 0,
            page: 0
        }));
        assert!(!g.contains(Ppa {
            channel: 0,
            die: 0,
            block: 16384,
            page: 0
        }));
        assert!(!g.contains(Ppa {
            channel: 0,
            die: 0,
            block: 0,
            page: 256
        }));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn linear_index_panics_outside_geometry() {
        let g = FlashGeometry::cosmos();
        g.linear_index(Ppa {
            channel: 99,
            die: 0,
            block: 0,
            page: 0,
        });
    }

    #[test]
    fn block_index_is_dense() {
        let g = FlashGeometry {
            channels: 2,
            dies_per_channel: 3,
            blocks_per_die: 4,
            pages_per_block: 1,
            page_bytes: 16,
        };
        let mut seen = std::collections::HashSet::new();
        for c in 0..2 {
            for d in 0..3 {
                for b in 0..4 {
                    seen.insert(g.block_index(c, d, b));
                }
            }
        }
        assert_eq!(seen.len(), 24);
        assert_eq!(*seen.iter().max().unwrap(), 23);
    }

    #[test]
    fn ppa_display_is_readable() {
        let ppa = Ppa {
            channel: 1,
            die: 2,
            block: 3,
            page: 4,
        };
        assert_eq!(ppa.to_string(), "ch1/die2/blk3/pg4");
    }
}
