//! Event-driven scheduling engine for the NAND array.
//!
//! Every operation is a short pipeline of *phases*, each of which occupies
//! one resource for a fixed duration:
//!
//! * `Read` — die busy for tR (array read into the page register), then the
//!   channel bus busy for the page transfer out.
//! * `Program` — channel bus busy for the page transfer in, then the die
//!   busy for tPROG.
//! * `Erase` — die busy for tERASE.
//!
//! Dies operate independently, so array reads on different dies of one
//! channel overlap; the shared channel bus serialises transfers. This is
//! exactly the parallelism structure §2.2 of the paper describes ("data
//! accesses can be conducted in parallel to provide higher aggregated
//! bandwidth and hide high latency operations").

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

use recssd_sim::stats::{Counter, Histogram};
use recssd_sim::{SimDuration, SimTime};

use crate::fault::{FaultPlan, ReadFault};
use crate::{FlashConfig, PageOracle, PageStore, Ppa};

/// Identifier of an in-flight flash operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlashOpId(u64);

impl fmt::Display for FlashOpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flash-op#{}", self.0)
    }
}

/// An operation submitted to the array.
#[derive(Debug, Clone, PartialEq)]
pub enum FlashOp {
    /// Read one page.
    Read {
        /// Page to read.
        ppa: Ppa,
    },
    /// Program one page. `data` may be shorter than the page (the rest of
    /// the page is zeros); it must not be longer.
    Program {
        /// Page to program. Pages within a block must be programmed in
        /// order, matching real NAND constraints.
        ppa: Ppa,
        /// Bytes to write (up to one page).
        data: Box<[u8]>,
    },
    /// Erase one block (`ppa.page` must be zero).
    Erase {
        /// Block to erase, addressed by its first page.
        ppa: Ppa,
    },
}

impl FlashOp {
    fn ppa(&self) -> Ppa {
        match self {
            FlashOp::Read { ppa } | FlashOp::Program { ppa, .. } | FlashOp::Erase { ppa } => *ppa,
        }
    }

    /// The operation's kind, without its payload.
    pub fn kind(&self) -> FlashOpKind {
        match self {
            FlashOp::Read { .. } => FlashOpKind::Read,
            FlashOp::Program { .. } => FlashOpKind::Program,
            FlashOp::Erase { .. } => FlashOpKind::Erase,
        }
    }
}

/// Kind of flash operation (payload-free tag for [`FlashOp`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlashOpKind {
    /// Page read.
    Read,
    /// Page program.
    Program,
    /// Block erase.
    Erase,
}

/// Events the array schedules for itself; route them back into
/// [`FlashArray::handle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashEvent {
    /// The current phase of `op` finished.
    PhaseDone {
        /// Operation whose phase completed.
        op: FlashOpId,
    },
}

/// A finished operation.
#[derive(Debug, Clone, PartialEq)]
pub struct FlashCompletion {
    /// The operation's id.
    pub op: FlashOpId,
    /// What kind of operation completed.
    pub kind: FlashOpKind,
    /// The page (or block head, for erases) it addressed.
    pub ppa: Ppa,
    /// Page contents, for reads.
    pub data: Option<Box<[u8]>>,
    /// When the operation was submitted (for latency accounting).
    pub submitted_at: SimTime,
    /// An injected uncorrectable error hit this operation. The data is
    /// still carried (GC relocation models offline firmware recovery);
    /// host-facing layers must surface a media error instead of using it.
    pub failed: bool,
    /// An injected transient error extended this read by ECC retry
    /// senses (the read still succeeded).
    pub retried: bool,
    /// Duration of the operation's final pipeline phase — the channel
    /// transfer for reads, tPROG for programs — which ends exactly at
    /// this completion. Lets observers place the bus-busy window on a
    /// timeline without the array carrying per-phase timestamps.
    pub last_phase: SimDuration,
}

/// Errors rejected at submission time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// The address is outside the configured geometry.
    InvalidPpa(Ppa),
    /// Program payload exceeds the page size.
    DataTooLarge {
        /// Bytes supplied.
        len: usize,
        /// Configured page size.
        page_bytes: usize,
    },
    /// Pages within a block must be programmed sequentially.
    ProgramOutOfOrder {
        /// The offending address.
        ppa: Ppa,
        /// The page index that must be programmed next in this block.
        expected_page: u32,
    },
    /// Erase must address a block head (`page == 0`).
    EraseNotBlockAligned(Ppa),
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::InvalidPpa(ppa) => write!(f, "physical address out of range: {ppa}"),
            FlashError::DataTooLarge { len, page_bytes } => {
                write!(
                    f,
                    "program payload of {len} bytes exceeds page size {page_bytes}"
                )
            }
            FlashError::ProgramOutOfOrder { ppa, expected_page } => write!(
                f,
                "out-of-order program at {ppa}: block expects page {expected_page} next"
            ),
            FlashError::EraseNotBlockAligned(ppa) => {
                write!(f, "erase must address page 0 of a block, got {ppa}")
            }
        }
    }
}

impl std::error::Error for FlashError {}

/// Aggregate statistics of the array.
#[derive(Debug, Clone, Default)]
pub struct FlashStats {
    /// Completed page reads.
    pub reads: Counter,
    /// Completed page programs.
    pub programs: Counter,
    /// Completed block erases.
    pub erases: Counter,
    /// End-to-end operation latency in nanoseconds.
    pub op_latency: Histogram,
    /// Accumulated bus-busy time per channel.
    pub channel_busy: Vec<SimDuration>,
}

impl FlashStats {
    /// Resets every counter, the latency histogram and the per-channel
    /// busy accumulators (geometry is preserved).
    pub fn reset(&mut self) {
        self.reads.reset();
        self.programs.reset();
        self.erases.reset();
        self.op_latency.reset();
        for b in &mut self.channel_busy {
            *b = SimDuration::ZERO;
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResKey {
    Die(usize),
    Channel(usize),
}

#[derive(Debug)]
struct Resource {
    busy: Option<FlashOpId>,
    waiters: VecDeque<FlashOpId>,
}

impl Default for Resource {
    fn default() -> Self {
        Resource {
            busy: None,
            // An NDP request can fan a whole batch out across a handful
            // of channels, so backlogs routinely reach dozens of ops;
            // pre-sizing keeps the hot queue/dequeue cycle from growing
            // the deque mid-run.
            waiters: VecDeque::with_capacity(128),
        }
    }
}

#[derive(Debug)]
struct OpState {
    op: FlashOp,
    /// At most two phases per operation; a fixed array avoids a per-op
    /// heap allocation on the hottest submit path.
    phases: [(ResKey, SimDuration); 2],
    n_phases: usize,
    cur: usize,
    submitted_at: SimTime,
    failed: bool,
    retried: bool,
}

/// Largest number of recycled page buffers the array keeps. Sized to cover
/// the deepest realistic read backlog (an NDP request fanning a full batch
/// out across the channels) so steady-state reads allocate nothing.
const PAGE_BUF_POOL_CAP: usize = 1024;

/// The NAND flash array: geometry, timing, per-resource scheduling and page
/// contents. See the [crate docs](crate) for the usage pattern.
#[derive(Debug)]
pub struct FlashArray {
    config: FlashConfig,
    dies: Vec<Resource>,
    channels: Vec<Resource>,
    store: PageStore,
    block_write_ptr: HashMap<u64, u32>,
    ops: HashMap<FlashOpId, OpState>,
    next_op: u64,
    /// Free-list of full-page read buffers (see
    /// [`FlashArray::recycle_page_buf`]).
    buf_pool: Vec<Box<[u8]>>,
    /// Optional fault-injection overlay (`None` = perfectly reliable).
    fault: Option<FaultPlan>,
    stats: FlashStats,
}

impl FlashArray {
    /// Creates an idle array with empty pages.
    pub fn new(config: FlashConfig) -> Self {
        let n_dies = config.geometry.total_dies() as usize;
        let n_channels = config.geometry.channels as usize;
        FlashArray {
            dies: (0..n_dies).map(|_| Resource::default()).collect(),
            channels: (0..n_channels).map(|_| Resource::default()).collect(),
            store: PageStore::new(),
            block_write_ptr: HashMap::new(),
            // Pre-sized for the deepest realistic in-flight set — an
            // NDP request fans a full batch's page reads out at once,
            // so hundreds of ops can be queued on the resources (cf.
            // `PAGE_BUF_POOL_CAP`) — so the hot submit/retire churn
            // never resizes the table: with monotonically increasing
            // op ids, growth-by-tombstone would otherwise trickle
            // allocations into steady state.
            ops: HashMap::with_capacity(PAGE_BUF_POOL_CAP.max(n_dies + 8 * n_channels)),
            next_op: 0,
            buf_pool: Vec::new(),
            fault: None,
            stats: FlashStats {
                channel_busy: vec![SimDuration::ZERO; n_channels],
                ..FlashStats::default()
            },
            config,
        }
    }

    /// The array's configuration.
    pub fn config(&self) -> &FlashConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &FlashStats {
        &self.stats
    }

    /// Resets the array's statistics and, if a fault plan is installed,
    /// its injection counters (RNG streams and schedules are untouched).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        if let Some(plan) = self.fault.as_mut() {
            plan.reset_stats();
        }
    }

    /// Installs (or clears) the fault-injection plan. `None` restores
    /// perfectly reliable behaviour.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Mutable access to the installed fault plan (e.g. to extend its
    /// brownout schedule mid-run).
    pub fn fault_plan_mut(&mut self) -> Option<&mut FaultPlan> {
        self.fault.as_mut()
    }

    /// `true` when no operations are in flight.
    pub fn idle(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of operations currently in flight.
    pub fn in_flight(&self) -> usize {
        self.ops.len()
    }

    /// Installs `oracle` as the content source for the linear page range
    /// `pages` and marks the covered blocks as programmed, simulating a
    /// device that was bulk-loaded before the experiment (§5 of the paper
    /// preloads embedding tables onto the OpenSSD the same way).
    pub fn preload(&mut self, pages: Range<u64>, oracle: Arc<dyn PageOracle>) {
        let g = self.config.geometry;
        assert!(pages.end <= g.total_pages(), "preload range out of bounds");
        if pages.is_empty() {
            return;
        }
        // Linear indices stripe channel-first (see FlashGeometry): the
        // covered page-counters of each (channel, die) lane are the values
        // m with  offset + m*stride  in `pages`.
        let stride = g.channels as u64 * g.dies_per_channel as u64;
        let ppb = g.pages_per_block as u64;
        for c in 0..g.channels {
            for d in 0..g.dies_per_channel {
                let offset = d as u64 * g.channels as u64 + c as u64;
                if pages.end <= offset {
                    continue;
                }
                let m_last = (pages.end - 1 - offset) / stride;
                let m_first = if pages.start <= offset {
                    0
                } else {
                    (pages.start - offset).div_ceil(stride)
                };
                if pages.start > offset && offset + m_last * stride < pages.start {
                    continue;
                }
                for b in (m_first / ppb)..=(m_last / ppb) {
                    let last_in_block = m_last.min((b + 1) * ppb - 1);
                    let ptr_val = (last_in_block % ppb + 1) as u32;
                    let bidx = g.block_index(c, d, b as u32);
                    let ptr = self.block_write_ptr.entry(bidx).or_insert(0);
                    *ptr = (*ptr).max(ptr_val);
                }
            }
        }
        self.store.register_oracle(pages, oracle);
    }

    /// Direct, zero-time access to page contents (for assertions and for
    /// the FTL's internally cached pages). Returns the first `n` bytes.
    pub fn page_bytes_prefix(&self, ppa: Ppa, n: usize) -> Vec<u8> {
        let idx = self.config.geometry.linear_index(ppa);
        let page = self.store.read(idx, self.config.geometry.page_bytes);
        page[..n].to_vec()
    }

    /// Zero-time read of a full page into `out` (model-internal fast path;
    /// timing must be charged by the caller).
    pub fn read_page_into(&self, ppa: Ppa, out: &mut [u8]) {
        let idx = self.config.geometry.linear_index(ppa);
        self.store.read_into(idx, out);
    }

    /// Returns a consumed full-page read buffer to the free-list; the next
    /// completed read fills it instead of allocating. Wrong-sized buffers
    /// are dropped (the pool only serves whole pages).
    pub fn recycle_page_buf(&mut self, buf: Box<[u8]>) {
        if buf.len() == self.config.geometry.page_bytes && self.buf_pool.len() < PAGE_BUF_POOL_CAP {
            self.buf_pool.push(buf);
        }
    }

    /// A page-sized buffer from the pool (or a fresh allocation) holding
    /// the contents of linear page `idx`.
    fn read_page_pooled(&mut self, idx: u64) -> Box<[u8]> {
        match self.buf_pool.pop() {
            Some(mut buf) => {
                self.store.read_into(idx, &mut buf);
                buf
            }
            None => self.store.read(idx, self.config.geometry.page_bytes),
        }
    }

    /// The next page expected by the sequential-program rule for `block`
    /// on `(channel, die)`.
    pub fn next_program_page(&self, channel: u32, die: u32, block: u32) -> u32 {
        let bidx = self.config.geometry.block_index(channel, die, block);
        self.block_write_ptr.get(&bidx).copied().unwrap_or(0)
    }

    /// Submits an operation.
    ///
    /// `sched` receives `(delay, event)` pairs that the caller must enqueue
    /// on its event loop and later route back through
    /// [`FlashArray::handle`].
    ///
    /// # Errors
    ///
    /// Returns a [`FlashError`] if the operation is malformed (bad address,
    /// oversized payload, out-of-order program, unaligned erase).
    pub fn submit(
        &mut self,
        now: SimTime,
        op: FlashOp,
        sched: &mut dyn FnMut(SimDuration, FlashEvent),
    ) -> Result<FlashOpId, FlashError> {
        let g = self.config.geometry;
        let ppa = op.ppa();
        if !g.contains(ppa) {
            return Err(FlashError::InvalidPpa(ppa));
        }
        match &op {
            FlashOp::Program { data, .. } => {
                if data.len() > g.page_bytes {
                    return Err(FlashError::DataTooLarge {
                        len: data.len(),
                        page_bytes: g.page_bytes,
                    });
                }
                let bidx = g.block_index(ppa.channel, ppa.die, ppa.block);
                let ptr = self.block_write_ptr.entry(bidx).or_insert(0);
                if *ptr != ppa.page {
                    let expected = *ptr;
                    return Err(FlashError::ProgramOutOfOrder {
                        ppa,
                        expected_page: expected,
                    });
                }
                *ptr += 1;
            }
            FlashOp::Erase { ppa } => {
                if ppa.page != 0 {
                    return Err(FlashError::EraseNotBlockAligned(*ppa));
                }
            }
            FlashOp::Read { .. } => {}
        }

        let die_key = ResKey::Die((ppa.channel * g.dies_per_channel + ppa.die) as usize);
        let chan_key = ResKey::Channel(ppa.channel as usize);
        let t = self.config.timing;
        let idle = (die_key, SimDuration::ZERO);
        let (mut phases, n_phases) = match op.kind() {
            FlashOpKind::Read => (
                [
                    (die_key, t.read_time()),
                    (chan_key, t.transfer_time(g.page_bytes)),
                ],
                2,
            ),
            FlashOpKind::Program => (
                [
                    (chan_key, t.transfer_time(g.page_bytes)),
                    (die_key, t.program_time()),
                ],
                2,
            ),
            FlashOpKind::Erase => ([(die_key, t.erase_time()), idle], 1),
        };

        // Fault injection: reads draw their fault outcome at submission
        // (a transient error extends the array-sense phase, an
        // uncorrectable one flags the op), and an active brownout window
        // inflates every phase of every operation by an integer factor.
        let mut failed = false;
        let mut retried = false;
        if let Some(plan) = self.fault.as_mut() {
            if op.kind() == FlashOpKind::Read {
                match plan.draw_read() {
                    Some(ReadFault::Transient) => {
                        phases[0].1 += t.ecc_retry_time(plan.config().ecc_retry_reads);
                        retried = true;
                    }
                    Some(ReadFault::Uncorrectable) => failed = true,
                    None => {}
                }
            }
            for phase in phases.iter_mut().take(n_phases) {
                phase.1 = plan.inflate(now, phase.1);
            }
        }

        let id = FlashOpId(self.next_op);
        self.next_op += 1;
        self.ops.insert(
            id,
            OpState {
                op,
                phases,
                n_phases,
                cur: 0,
                submitted_at: now,
                failed,
                retried,
            },
        );
        self.try_start_phase(id, sched);
        Ok(id)
    }

    fn resource(&mut self, key: ResKey) -> &mut Resource {
        match key {
            ResKey::Die(i) => &mut self.dies[i],
            ResKey::Channel(i) => &mut self.channels[i],
        }
    }

    /// Attempts to start `op`'s current phase; queues on the resource if
    /// it is busy.
    fn try_start_phase(&mut self, id: FlashOpId, sched: &mut dyn FnMut(SimDuration, FlashEvent)) {
        let (key, dur) = {
            let st = &self.ops[&id];
            st.phases[st.cur]
        };
        let res = self.resource(key);
        if res.busy.is_none() {
            res.busy = Some(id);
            if let ResKey::Channel(c) = key {
                self.stats.channel_busy[c] += dur;
            }
            sched(dur, FlashEvent::PhaseDone { op: id });
        } else {
            res.waiters.push_back(id);
        }
    }

    /// Processes one of the array's own events. Returns a completion when
    /// an operation finishes.
    ///
    /// # Panics
    ///
    /// Panics if `ev` refers to an operation this array does not own
    /// (which would indicate event routing corruption in the caller).
    pub fn handle(
        &mut self,
        now: SimTime,
        ev: FlashEvent,
        sched: &mut dyn FnMut(SimDuration, FlashEvent),
    ) -> Option<FlashCompletion> {
        let FlashEvent::PhaseDone { op: id } = ev;
        let (key, finished) = {
            let st = self.ops.get_mut(&id).expect("phase event for unknown op");
            let key = st.phases[st.cur].0;
            st.cur += 1;
            (key, st.cur == st.n_phases)
        };

        // Release the resource and start the next waiter, if any.
        let res = self.resource(key);
        debug_assert_eq!(res.busy, Some(id), "resource released by non-owner");
        res.busy = None;
        if let Some(next) = res.waiters.pop_front() {
            let (nkey, ndur) = {
                let st = &self.ops[&next];
                st.phases[st.cur]
            };
            debug_assert_eq!(nkey, key);
            let res = self.resource(key);
            res.busy = Some(next);
            if let ResKey::Channel(c) = nkey {
                self.stats.channel_busy[c] += ndur;
            }
            sched(ndur, FlashEvent::PhaseDone { op: next });
        }

        if !finished {
            self.try_start_phase(id, sched);
            return None;
        }

        // Operation complete: apply its data effect and report.
        let st = self.ops.remove(&id).expect("op vanished mid-flight");
        let g = self.config.geometry;
        let ppa = st.op.ppa();
        let kind = st.op.kind();
        let failed = st.failed;
        let retried = st.retried;
        let last_phase = st.phases[st.n_phases - 1].1;
        let data = match st.op {
            FlashOp::Read { ppa } => {
                self.stats.reads.inc();
                Some(self.read_page_pooled(g.linear_index(ppa)))
            }
            FlashOp::Program { ppa, data } => {
                self.stats.programs.inc();
                self.store.write(g.linear_index(ppa), &data);
                // GC relocations program whole pages; their buffers go
                // straight back to the read pool.
                self.recycle_page_buf(data);
                None
            }
            FlashOp::Erase { ppa } => {
                self.stats.erases.inc();
                let bidx = g.block_index(ppa.channel, ppa.die, ppa.block);
                self.block_write_ptr.insert(bidx, 0);
                for page in 0..g.pages_per_block {
                    let p = Ppa { page, ..ppa };
                    self.store.erase(g.linear_index(p));
                }
                None
            }
        };
        self.stats
            .op_latency
            .record(now.saturating_since(st.submitted_at).as_ns());
        Some(FlashCompletion {
            op: id,
            kind,
            ppa,
            data,
            submitted_at: st.submitted_at,
            failed,
            retried,
            last_phase,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recssd_sim::EventQueue;

    fn drain(
        flash: &mut FlashArray,
        queue: &mut EventQueue<FlashEvent>,
    ) -> Vec<(SimTime, FlashCompletion)> {
        let mut done = Vec::new();
        while let Some((now, ev)) = queue.pop() {
            let mut pending = Vec::new();
            if let Some(c) = flash.handle(now, ev, &mut |d, e| pending.push((d, e))) {
                done.push((now, c));
            }
            for (d, e) in pending {
                queue.push_after(d, e);
            }
        }
        done
    }

    fn submit(
        flash: &mut FlashArray,
        queue: &mut EventQueue<FlashEvent>,
        op: FlashOp,
    ) -> FlashOpId {
        flash
            .submit(queue.now(), op, &mut |d, e| queue.push_after(d, e))
            .expect("valid op")
    }

    #[test]
    fn single_read_latency_is_tr_plus_transfer() {
        let cfg = FlashConfig::cosmos_small();
        let expected = cfg.timing.read_time() + cfg.timing.transfer_time(cfg.geometry.page_bytes);
        let mut flash = FlashArray::new(cfg);
        let mut q = EventQueue::new();
        submit(
            &mut flash,
            &mut q,
            FlashOp::Read {
                ppa: Ppa {
                    channel: 0,
                    die: 0,
                    block: 0,
                    page: 0,
                },
            },
        );
        let done = drain(&mut flash, &mut q);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, SimTime::ZERO + expected);
        assert!(flash.idle());
    }

    #[test]
    fn program_then_read_round_trips_data() {
        let mut flash = FlashArray::new(FlashConfig::cosmos_small());
        let mut q = EventQueue::new();
        let ppa = Ppa {
            channel: 1,
            die: 1,
            block: 2,
            page: 0,
        };
        submit(
            &mut flash,
            &mut q,
            FlashOp::Program {
                ppa,
                data: vec![1, 2, 3, 4].into_boxed_slice(),
            },
        );
        drain(&mut flash, &mut q);
        submit(&mut flash, &mut q, FlashOp::Read { ppa });
        let done = drain(&mut flash, &mut q);
        let data = done[0].1.data.as_ref().unwrap();
        assert_eq!(&data[..4], &[1, 2, 3, 4]);
        assert!(data[4..].iter().all(|&b| b == 0));
    }

    #[test]
    fn reads_on_different_channels_fully_overlap() {
        let cfg = FlashConfig::cosmos_small();
        let one = cfg.timing.read_time() + cfg.timing.transfer_time(cfg.geometry.page_bytes);
        let mut flash = FlashArray::new(cfg);
        let mut q = EventQueue::new();
        for ch in 0..2 {
            submit(
                &mut flash,
                &mut q,
                FlashOp::Read {
                    ppa: Ppa {
                        channel: ch,
                        die: 0,
                        block: 0,
                        page: 0,
                    },
                },
            );
        }
        let done = drain(&mut flash, &mut q);
        let finish = done.iter().map(|(t, _)| *t).max().unwrap();
        assert_eq!(finish, SimTime::ZERO + one, "two channels = one latency");
    }

    #[test]
    fn reads_on_same_die_serialise_array_time() {
        let cfg = FlashConfig::cosmos_small();
        let tr = cfg.timing.read_time();
        let xfer = cfg.timing.transfer_time(cfg.geometry.page_bytes);
        let mut flash = FlashArray::new(cfg);
        let mut q = EventQueue::new();
        for page in 0..2 {
            submit(
                &mut flash,
                &mut q,
                FlashOp::Read {
                    ppa: Ppa {
                        channel: 0,
                        die: 0,
                        block: 0,
                        page,
                    },
                },
            );
        }
        let done = drain(&mut flash, &mut q);
        let finish = done.iter().map(|(t, _)| *t).max().unwrap();
        // Second array read starts only after the first releases the die;
        // its transfer then queues behind the first transfer.
        let expected = SimTime::ZERO + tr + tr.max(xfer) + xfer;
        assert_eq!(finish, expected);
    }

    #[test]
    fn dies_on_one_channel_overlap_tr_but_share_bus() {
        let cfg = FlashConfig::cosmos_small();
        let tr = cfg.timing.read_time();
        let xfer = cfg.timing.transfer_time(cfg.geometry.page_bytes);
        let mut flash = FlashArray::new(cfg);
        let mut q = EventQueue::new();
        for die in 0..2 {
            submit(
                &mut flash,
                &mut q,
                FlashOp::Read {
                    ppa: Ppa {
                        channel: 0,
                        die,
                        block: 0,
                        page: 0,
                    },
                },
            );
        }
        let done = drain(&mut flash, &mut q);
        let finish = done.iter().map(|(t, _)| *t).max().unwrap();
        // Both tRs overlap; the two transfers serialise on the bus.
        assert_eq!(finish, SimTime::ZERO + tr + xfer + xfer);
    }

    #[test]
    fn sustained_channel_throughput_is_bus_bound() {
        let cfg = FlashConfig::cosmos_small();
        let xfer = cfg.timing.transfer_time(cfg.geometry.page_bytes);
        let tr = cfg.timing.read_time();
        let mut flash = FlashArray::new(cfg);
        let mut q = EventQueue::new();
        let n = 16;
        for i in 0..n {
            submit(
                &mut flash,
                &mut q,
                FlashOp::Read {
                    ppa: Ppa {
                        channel: 0,
                        die: i % 2,
                        block: 0,
                        page: i / 2,
                    },
                },
            );
        }
        let done = drain(&mut flash, &mut q);
        let finish = done.iter().map(|(t, _)| *t).max().unwrap();
        // Pipeline: fill with one tR, then n transfers back to back.
        let expected = SimTime::ZERO + tr + xfer * (n as u64);
        let slack = SimDuration::from_us(200);
        assert!(
            finish >= expected - slack && finish <= expected + slack * 2,
            "finish={finish} expected≈{expected}"
        );
    }

    #[test]
    fn out_of_order_program_is_rejected() {
        let mut flash = FlashArray::new(FlashConfig::cosmos_small());
        let mut q: EventQueue<FlashEvent> = EventQueue::new();
        let ppa = Ppa {
            channel: 0,
            die: 0,
            block: 0,
            page: 3,
        };
        let err = flash
            .submit(
                q.now(),
                FlashOp::Program {
                    ppa,
                    data: Box::new([1]),
                },
                &mut |d, e| q.push_after(d, e),
            )
            .unwrap_err();
        assert_eq!(
            err,
            FlashError::ProgramOutOfOrder {
                ppa,
                expected_page: 0
            }
        );
    }

    #[test]
    fn rewriting_a_page_requires_erase() {
        let mut flash = FlashArray::new(FlashConfig::cosmos_small());
        let mut q = EventQueue::new();
        let ppa = Ppa {
            channel: 0,
            die: 0,
            block: 0,
            page: 0,
        };
        submit(
            &mut flash,
            &mut q,
            FlashOp::Program {
                ppa,
                data: Box::new([1]),
            },
        );
        drain(&mut flash, &mut q);
        // Same page again: write pointer moved past it.
        let err = flash
            .submit(
                q.now(),
                FlashOp::Program {
                    ppa,
                    data: Box::new([2]),
                },
                &mut |d, e| q.push_after(d, e),
            )
            .unwrap_err();
        assert!(matches!(err, FlashError::ProgramOutOfOrder { .. }));
        // After an erase the block accepts page 0 again.
        submit(&mut flash, &mut q, FlashOp::Erase { ppa });
        drain(&mut flash, &mut q);
        assert_eq!(flash.next_program_page(0, 0, 0), 0);
        submit(
            &mut flash,
            &mut q,
            FlashOp::Program {
                ppa,
                data: Box::new([2]),
            },
        );
        drain(&mut flash, &mut q);
        assert_eq!(flash.page_bytes_prefix(ppa, 1), vec![2]);
    }

    #[test]
    fn erase_clears_whole_block() {
        let mut flash = FlashArray::new(FlashConfig::cosmos_small());
        let mut q = EventQueue::new();
        for page in 0..3 {
            submit(
                &mut flash,
                &mut q,
                FlashOp::Program {
                    ppa: Ppa {
                        channel: 0,
                        die: 0,
                        block: 1,
                        page,
                    },
                    data: Box::new([page as u8 + 1]),
                },
            );
        }
        drain(&mut flash, &mut q);
        submit(
            &mut flash,
            &mut q,
            FlashOp::Erase {
                ppa: Ppa {
                    channel: 0,
                    die: 0,
                    block: 1,
                    page: 0,
                },
            },
        );
        drain(&mut flash, &mut q);
        for page in 0..3 {
            assert_eq!(
                flash.page_bytes_prefix(
                    Ppa {
                        channel: 0,
                        die: 0,
                        block: 1,
                        page
                    },
                    1
                ),
                vec![0]
            );
        }
    }

    #[test]
    fn invalid_addresses_rejected() {
        let mut flash = FlashArray::new(FlashConfig::cosmos_small());
        let mut q: EventQueue<FlashEvent> = EventQueue::new();
        let bad = Ppa {
            channel: 99,
            die: 0,
            block: 0,
            page: 0,
        };
        assert_eq!(
            flash
                .submit(q.now(), FlashOp::Read { ppa: bad }, &mut |d, e| q
                    .push_after(d, e))
                .unwrap_err(),
            FlashError::InvalidPpa(bad)
        );
        let head = Ppa {
            channel: 0,
            die: 0,
            block: 0,
            page: 1,
        };
        assert_eq!(
            flash
                .submit(q.now(), FlashOp::Erase { ppa: head }, &mut |d, e| q
                    .push_after(d, e))
                .unwrap_err(),
            FlashError::EraseNotBlockAligned(head)
        );
        let err = flash
            .submit(
                q.now(),
                FlashOp::Program {
                    ppa: Ppa {
                        channel: 0,
                        die: 0,
                        block: 0,
                        page: 0,
                    },
                    data: vec![0u8; 17 * 1024].into_boxed_slice(),
                },
                &mut |d, e| q.push_after(d, e),
            )
            .unwrap_err();
        assert!(matches!(err, FlashError::DataTooLarge { .. }));
    }

    #[test]
    fn preload_oracle_reads_and_blocks_marked_written() {
        #[derive(Debug)]
        struct IdxOracle;
        impl PageOracle for IdxOracle {
            fn fill_page(&self, page_index: u64, out: &mut [u8]) {
                out[..8].copy_from_slice(&page_index.to_le_bytes());
            }
        }
        let cfg = FlashConfig::cosmos_small();
        let g = cfg.geometry;
        let mut flash = FlashArray::new(cfg);
        let mut q = EventQueue::new();
        // 2 channels x 2 dies (stripe width 4): 40 preloaded pages put 10
        // page-counters on every lane, all within block 0.
        flash.preload(0..40, Arc::new(IdxOracle));
        for c in 0..2 {
            for d in 0..2 {
                assert_eq!(flash.next_program_page(c, d, 0), 10);
                assert_eq!(flash.next_program_page(c, d, 1), 0);
            }
        }
        let ppa = g.ppa_of_index(33);
        submit(&mut flash, &mut q, FlashOp::Read { ppa });
        let done = drain(&mut flash, &mut q);
        let data = done[0].1.data.as_ref().unwrap();
        assert_eq!(u64::from_le_bytes(data[..8].try_into().unwrap()), 33);
        // A partial-stripe preload only advances the touched lanes.
        let mut flash2 = FlashArray::new(FlashConfig::cosmos_small());
        flash2.preload(0..2, Arc::new(IdxOracle));
        assert_eq!(flash2.next_program_page(0, 0, 0), 1);
        assert_eq!(flash2.next_program_page(1, 0, 0), 1);
        assert_eq!(flash2.next_program_page(0, 1, 0), 0);
    }

    #[test]
    fn quiet_fault_plan_is_timing_identical() {
        let run = |plan: Option<crate::FaultPlan>| {
            let mut flash = FlashArray::new(FlashConfig::cosmos_small());
            flash.set_fault_plan(plan);
            let mut q = EventQueue::new();
            for i in 0..8 {
                submit(
                    &mut flash,
                    &mut q,
                    FlashOp::Read {
                        ppa: Ppa {
                            channel: i % 2,
                            die: 0,
                            block: 0,
                            page: i / 2,
                        },
                    },
                );
            }
            drain(&mut flash, &mut q)
                .into_iter()
                .map(|(t, c)| (t, c.op, c.failed))
                .collect::<Vec<_>>()
        };
        let without = run(None);
        let quiet = run(Some(crate::FaultPlan::new(crate::FaultConfig::quiet(5))));
        assert_eq!(without, quiet, "a quiet plan must not perturb anything");
        assert!(quiet.iter().all(|&(_, _, failed)| !failed));
    }

    #[test]
    fn certain_transient_fault_extends_read_latency() {
        let cfg = FlashConfig::cosmos_small();
        let base = cfg.timing.read_time() + cfg.timing.transfer_time(cfg.geometry.page_bytes);
        let retry = cfg.timing.ecc_retry_time(2);
        let mut flash = FlashArray::new(cfg);
        flash.set_fault_plan(Some(crate::FaultPlan::new(crate::FaultConfig {
            transient_read_error_rate: 1.0,
            ecc_retry_reads: 2,
            ..crate::FaultConfig::quiet(1)
        })));
        let mut q = EventQueue::new();
        submit(
            &mut flash,
            &mut q,
            FlashOp::Read {
                ppa: Ppa {
                    channel: 0,
                    die: 0,
                    block: 0,
                    page: 0,
                },
            },
        );
        let done = drain(&mut flash, &mut q);
        assert_eq!(done[0].0, SimTime::ZERO + base + retry);
        assert!(!done[0].1.failed, "transient errors are recovered");
        assert_eq!(flash.fault_plan().unwrap().stats().transient.get(), 1);
    }

    #[test]
    fn certain_uncorrectable_fault_flags_completion() {
        let mut flash = FlashArray::new(FlashConfig::cosmos_small());
        flash.set_fault_plan(Some(crate::FaultPlan::new(crate::FaultConfig {
            uncorrectable_rate: 1.0,
            ..crate::FaultConfig::quiet(1)
        })));
        let mut q = EventQueue::new();
        submit(
            &mut flash,
            &mut q,
            FlashOp::Read {
                ppa: Ppa {
                    channel: 0,
                    die: 0,
                    block: 0,
                    page: 0,
                },
            },
        );
        let done = drain(&mut flash, &mut q);
        assert!(done[0].1.failed);
        assert!(done[0].1.data.is_some(), "failed reads still carry data");
        assert_eq!(flash.fault_plan().unwrap().stats().uncorrectable.get(), 1);
    }

    #[test]
    fn brownout_window_inflates_all_op_kinds() {
        let cfg = FlashConfig::cosmos_small();
        let base = cfg.timing.read_time() + cfg.timing.transfer_time(cfg.geometry.page_bytes);
        let mut flash = FlashArray::new(cfg);
        flash.set_fault_plan(Some(crate::FaultPlan::new(crate::FaultConfig {
            brownouts: vec![crate::BrownoutWindow {
                start: SimTime::ZERO,
                end: SimTime::ZERO + SimDuration::from_ms(1),
                factor: 3,
            }],
            ..crate::FaultConfig::quiet(1)
        })));
        let mut q = EventQueue::new();
        submit(
            &mut flash,
            &mut q,
            FlashOp::Read {
                ppa: Ppa {
                    channel: 0,
                    die: 0,
                    block: 0,
                    page: 0,
                },
            },
        );
        let done = drain(&mut flash, &mut q);
        assert_eq!(done[0].0, SimTime::ZERO + base * 3);
        assert!(!done[0].1.failed);
    }

    #[test]
    fn stats_track_operations() {
        let mut flash = FlashArray::new(FlashConfig::cosmos_small());
        let mut q = EventQueue::new();
        submit(
            &mut flash,
            &mut q,
            FlashOp::Program {
                ppa: Ppa {
                    channel: 0,
                    die: 0,
                    block: 0,
                    page: 0,
                },
                data: Box::new([1]),
            },
        );
        submit(
            &mut flash,
            &mut q,
            FlashOp::Read {
                ppa: Ppa {
                    channel: 1,
                    die: 0,
                    block: 0,
                    page: 0,
                },
            },
        );
        drain(&mut flash, &mut q);
        assert_eq!(flash.stats().reads.get(), 1);
        assert_eq!(flash.stats().programs.get(), 1);
        assert_eq!(flash.stats().op_latency.count(), 2);
        assert!(flash.stats().channel_busy[0] > SimDuration::ZERO);
        assert!(flash.stats().channel_busy[1] > SimDuration::ZERO);
    }
}
