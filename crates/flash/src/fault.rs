//! Deterministic, seeded fault injection for the flash array and the
//! firmware core above it.
//!
//! A [`FaultPlan`] is an **optional** overlay: when absent (the default)
//! the array behaves exactly as before, and when present with all rates at
//! zero it draws from its RNG streams without ever firing, so the injected
//! schedule is a pure function of the seed and the sequence of reads —
//! replayable across runs and bit-identical to a fault-free build when
//! quiet (see `FaultConfig::quiet`).
//!
//! Four fault classes are modelled, mirroring the steady-state failure
//! modes of a production flash fleet:
//!
//! * **Transient read errors** — an ECC-correctable raw bit-error burst;
//!   the read succeeds after `ecc_retry_reads` extra array senses, so the
//!   fault is pure extra latency on the die.
//! * **Uncorrectable read errors** — the page is beyond ECC; the
//!   completion is flagged `failed` and the layer above turns it into a
//!   typed media error.
//! * **Firmware stalls** — a command charge occupies the serial firmware
//!   core for a multiple of its normal service time (a wedged embedded-CPU
//!   code path).
//! * **Brownouts** — every latency in a configured window is inflated by
//!   an integer factor (thermal throttling, background refresh, a noisy
//!   co-tenant).
//!
//! Two independent [`Xoshiro256`] streams back the plan: one consumed per
//! page read, one per firmware charge. Each read makes *both* of its
//! Bernoulli draws (uncorrectable, then transient) in a fixed order, so
//! the schedule of one fault class does not shift when the other's rate
//! changes.

use recssd_sim::rng::{mix64, Xoshiro256};
use recssd_sim::stats::Counter;
use recssd_sim::{SimDuration, SimTime};

/// Stream-separation constants mixed into the seed so the per-read and
/// per-firmware-charge streams are decorrelated.
const READ_STREAM: u64 = 0x52_45_41_44; // "READ"
const FW_STREAM: u64 = 0x46_57_43_52; // "FWCR"

/// A window of simulated time during which every latency the plan sees is
/// inflated by an integer factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrownoutWindow {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Latency multiplier inside the window (values ≤ 1 are inert).
    pub factor: u32,
}

impl BrownoutWindow {
    /// `true` if `now` falls inside the window.
    pub fn contains(&self, now: SimTime) -> bool {
        self.start <= now && now < self.end
    }
}

/// Configuration of a [`FaultPlan`]: the seed and the per-class rates.
///
/// All rates default to zero — constructing a plan from
/// [`FaultConfig::quiet`] exercises the fault plumbing without ever
/// injecting a fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed of the plan's RNG streams.
    pub seed: u64,
    /// Per-page-read probability of an ECC-correctable transient error.
    pub transient_read_error_rate: f64,
    /// Extra array senses a transient error costs before ECC converges.
    pub ecc_retry_reads: u32,
    /// Per-page-read probability of an uncorrectable media error.
    pub uncorrectable_rate: f64,
    /// Per-firmware-charge probability of a stalled command.
    pub stall_rate: f64,
    /// Service-time multiplier of a stalled firmware charge.
    pub stall_multiplier: u32,
    /// Whole-device latency-inflation windows.
    pub brownouts: Vec<BrownoutWindow>,
}

impl FaultConfig {
    /// A plan that draws from its streams but never fires: every rate is
    /// zero and no brownout windows are configured.
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            transient_read_error_rate: 0.0,
            ecc_retry_reads: 2,
            uncorrectable_rate: 0.0,
            stall_rate: 0.0,
            stall_multiplier: 8,
            brownouts: Vec::new(),
        }
    }
}

/// Outcome of the per-read fault draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// ECC-correctable: the read succeeds after extra sense latency.
    Transient,
    /// Beyond ECC: the completion must be flagged failed.
    Uncorrectable,
}

/// Counters of injected faults, for telemetry and replay checks.
#[derive(Debug, Clone, Default)]
pub struct FaultStats {
    /// Transient (ECC-retried) read errors injected.
    pub transient: Counter,
    /// Uncorrectable read errors injected.
    pub uncorrectable: Counter,
    /// Firmware command stalls injected.
    pub stalls: Counter,
}

impl FaultStats {
    /// Resets every injection counter.
    pub fn reset(&mut self) {
        self.transient.reset();
        self.uncorrectable.reset();
        self.stalls.reset();
    }
}

/// A live fault-injection plan: configuration, RNG streams and counters.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    read_rng: Xoshiro256,
    fw_rng: Xoshiro256,
    stats: FaultStats,
}

impl FaultPlan {
    /// Builds a plan; two independent streams are derived from the seed.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan {
            read_rng: Xoshiro256::seed_from(mix64(config.seed ^ READ_STREAM)),
            fw_rng: Xoshiro256::seed_from(mix64(config.seed ^ FW_STREAM)),
            config,
            stats: FaultStats::default(),
        }
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Injection counters accumulated so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Resets the injection counters without touching the RNG streams,
    /// so the injected schedule keeps replaying deterministically.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Draws the fault outcome for one page read. Both Bernoulli draws
    /// happen on every call, in a fixed order, so each fault class keeps
    /// its own deterministic schedule regardless of the other's rate.
    pub fn draw_read(&mut self) -> Option<ReadFault> {
        let uncorrectable = self.read_rng.gen_bool(self.config.uncorrectable_rate);
        let transient = self
            .read_rng
            .gen_bool(self.config.transient_read_error_rate);
        if uncorrectable {
            self.stats.uncorrectable.inc();
            Some(ReadFault::Uncorrectable)
        } else if transient {
            self.stats.transient.inc();
            Some(ReadFault::Transient)
        } else {
            None
        }
    }

    /// Draws the stall outcome for one firmware charge: the service-time
    /// multiplier when the command stalls.
    pub fn draw_stall(&mut self) -> Option<u32> {
        if self.fw_rng.gen_bool(self.config.stall_rate) {
            self.stats.stalls.inc();
            Some(self.config.stall_multiplier.max(1))
        } else {
            None
        }
    }

    /// The brownout factor in effect at `now`, if any window covers it.
    pub fn brownout_factor(&self, now: SimTime) -> Option<u32> {
        self.config
            .brownouts
            .iter()
            .find(|w| w.contains(now) && w.factor > 1)
            .map(|w| w.factor)
    }

    /// Inflates a duration by the brownout factor in effect at `now`.
    /// Outside every window this returns `d` untouched (an exact integer
    /// pass-through, so a quiet plan never perturbs timing).
    pub fn inflate(&self, now: SimTime, d: SimDuration) -> SimDuration {
        match self.brownout_factor(now) {
            Some(k) => d * k as u64,
            None => d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_fires_but_advances_streams() {
        let mut plan = FaultPlan::new(FaultConfig::quiet(7));
        for _ in 0..10_000 {
            assert_eq!(plan.draw_read(), None);
            assert_eq!(plan.draw_stall(), None);
        }
        assert_eq!(plan.stats().transient.get(), 0);
        assert_eq!(plan.stats().uncorrectable.get(), 0);
        assert_eq!(plan.stats().stalls.get(), 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig {
            transient_read_error_rate: 0.05,
            uncorrectable_rate: 0.01,
            stall_rate: 0.02,
            ..FaultConfig::quiet(42)
        };
        let mut a = FaultPlan::new(cfg.clone());
        let mut b = FaultPlan::new(cfg);
        for _ in 0..10_000 {
            assert_eq!(a.draw_read(), b.draw_read());
            assert_eq!(a.draw_stall(), b.draw_stall());
        }
        assert_eq!(a.stats().transient.get(), b.stats().transient.get());
    }

    #[test]
    fn transient_schedule_independent_of_uncorrectable_rate() {
        // Raising the uncorrectable rate must not move the transient
        // draws: both draws happen on every read in a fixed order.
        let base = FaultConfig {
            transient_read_error_rate: 0.1,
            ..FaultConfig::quiet(9)
        };
        let mut only_transient = FaultPlan::new(base.clone());
        let mut both = FaultPlan::new(FaultConfig {
            uncorrectable_rate: 0.5,
            ..base
        });
        let mut masked = 0u64;
        for _ in 0..5_000 {
            let a = only_transient.draw_read();
            let b = both.draw_read();
            match b {
                // An uncorrectable draw masks whatever the transient draw
                // produced; otherwise the outcomes must agree.
                Some(ReadFault::Uncorrectable) => masked += 1,
                other => assert_eq!(other, a),
            }
        }
        assert!(masked > 1_000, "uncorrectable draws should have fired");
    }

    #[test]
    fn rates_roughly_hold() {
        let mut plan = FaultPlan::new(FaultConfig {
            transient_read_error_rate: 0.25,
            uncorrectable_rate: 0.01,
            ..FaultConfig::quiet(3)
        });
        let n = 100_000;
        for _ in 0..n {
            plan.draw_read();
        }
        let t = plan.stats().transient.get() as f64 / n as f64;
        let u = plan.stats().uncorrectable.get() as f64 / n as f64;
        assert!((t - 0.25 * 0.99).abs() < 0.01, "transient rate was {t}");
        assert!((u - 0.01).abs() < 0.005, "uncorrectable rate was {u}");
    }

    #[test]
    fn brownout_inflates_only_inside_window() {
        let mut cfg = FaultConfig::quiet(1);
        cfg.brownouts.push(BrownoutWindow {
            start: SimTime::ZERO + SimDuration::from_us(10),
            end: SimTime::ZERO + SimDuration::from_us(20),
            factor: 4,
        });
        let plan = FaultPlan::new(cfg);
        let d = SimDuration::from_us(3);
        let before = SimTime::ZERO + SimDuration::from_us(5);
        let inside = SimTime::ZERO + SimDuration::from_us(15);
        let after = SimTime::ZERO + SimDuration::from_us(25);
        assert_eq!(plan.inflate(before, d), d);
        assert_eq!(plan.inflate(inside, d), d * 4);
        assert_eq!(plan.inflate(after, d), d);
        // The window end is exclusive.
        let edge = SimTime::ZERO + SimDuration::from_us(20);
        assert_eq!(plan.inflate(edge, d), d);
    }
}
