//! Backing storage for flash page contents.
//!
//! Two backing modes coexist:
//!
//! * **Explicit** pages were written through the program path; their bytes
//!   are stored (trailing zeros trimmed, so a 16 KB page holding one 128 B
//!   embedding vector costs ~128 B of host memory).
//! * **Oracle** pages belong to a preloaded region whose contents are
//!   synthesised on demand by a [`PageOracle`]. This is how multi-GB
//!   embedding-table images are "pre-written" to the device without
//!   materialising them, mirroring how the paper preloads tables onto the
//!   OpenSSD before timing runs.
//!
//! Explicit data shadows oracle data; an erase tombstones oracle pages.
//!
//! Deviation from real NAND: unwritten pages read as zeros (not 0xFF). The
//! workloads in this reproduction never read erased pages for data, and
//! zero-fill lets us trim trailing zeros when storing sparse page images.

use std::collections::{HashMap, HashSet};
use std::ops::Range;
use std::sync::Arc;

/// Synthesises the contents of preloaded pages on demand.
///
/// Implementations must be deterministic: the same page index must always
/// produce the same bytes, because a page may be regenerated many times.
pub trait PageOracle: std::fmt::Debug + Send + Sync {
    /// Fills `out` (one full page, pre-zeroed) with the contents of the
    /// page at linear index `page_index` (see
    /// [`FlashGeometry::linear_index`](crate::FlashGeometry::linear_index)).
    fn fill_page(&self, page_index: u64, out: &mut [u8]);
}

/// Sparse, oracle-backed storage of page contents.
#[derive(Debug, Default)]
pub struct PageStore {
    explicit: HashMap<u64, Box<[u8]>>,
    oracles: Vec<(Range<u64>, Arc<dyn PageOracle>)>,
    tombstones: HashSet<u64>,
}

impl PageStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        PageStore::default()
    }

    /// Registers `oracle` as the content source for the linear page range
    /// `pages`. Later registrations shadow earlier ones on overlap;
    /// registrations the new range fully covers can never be consulted
    /// again and are dropped, so re-binding a region (placement plan
    /// refresh) does not accumulate dead oracles.
    pub fn register_oracle(&mut self, pages: Range<u64>, oracle: Arc<dyn PageOracle>) {
        self.oracles
            .retain(|(r, _)| !(pages.start <= r.start && r.end <= pages.end));
        self.oracles.push((pages, oracle));
    }

    /// Stores explicitly written page contents (trailing zeros trimmed).
    pub fn write(&mut self, page_index: u64, data: &[u8]) {
        let trimmed_len = data.iter().rposition(|&b| b != 0).map_or(0, |p| p + 1);
        self.explicit
            .insert(page_index, data[..trimmed_len].to_vec().into_boxed_slice());
        self.tombstones.remove(&page_index);
    }

    /// Removes a page's contents (used by block erase). Oracle-covered
    /// pages are tombstoned so they read as zeros afterwards.
    pub fn erase(&mut self, page_index: u64) {
        self.explicit.remove(&page_index);
        if self.oracle_for(page_index).is_some() {
            self.tombstones.insert(page_index);
        }
    }

    fn oracle_for(&self, page_index: u64) -> Option<&Arc<dyn PageOracle>> {
        // Later registrations shadow earlier ones.
        self.oracles
            .iter()
            .rev()
            .find(|(r, _)| r.contains(&page_index))
            .map(|(_, o)| o)
    }

    /// Reads the full page at `page_index` into `out`, zero-filling
    /// whatever was never written.
    pub fn read_into(&self, page_index: u64, out: &mut [u8]) {
        out.fill(0);
        if let Some(data) = self.explicit.get(&page_index) {
            out[..data.len()].copy_from_slice(data);
        } else if !self.tombstones.contains(&page_index) {
            if let Some(oracle) = self.oracle_for(page_index) {
                oracle.fill_page(page_index, out);
            }
        }
    }

    /// Reads a page into a freshly allocated buffer of `page_bytes`.
    pub fn read(&self, page_index: u64, page_bytes: usize) -> Box<[u8]> {
        let mut buf = vec![0u8; page_bytes].into_boxed_slice();
        self.read_into(page_index, &mut buf);
        buf
    }

    /// `true` if the page has explicitly written contents (oracle pages
    /// excluded).
    pub fn is_written(&self, page_index: u64) -> bool {
        self.explicit.contains_key(&page_index)
    }

    /// Number of explicitly stored pages (diagnostics).
    pub fn explicit_pages(&self) -> usize {
        self.explicit.len()
    }

    /// Approximate bytes of host memory used by explicit page images.
    pub fn resident_bytes(&self) -> usize {
        self.explicit.values().map(|d| d.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct SeqOracle;
    impl PageOracle for SeqOracle {
        fn fill_page(&self, page_index: u64, out: &mut [u8]) {
            out[0] = page_index as u8;
            out[1] = 0xAB;
        }
    }

    #[test]
    fn unwritten_pages_read_zero() {
        let store = PageStore::new();
        let page = store.read(5, 64);
        assert!(page.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_read_round_trip() {
        let mut store = PageStore::new();
        let mut data = vec![0u8; 64];
        data[0] = 1;
        data[10] = 2;
        store.write(3, &data);
        assert_eq!(&store.read(3, 64)[..], &data[..]);
    }

    #[test]
    fn trailing_zeros_are_trimmed_but_contents_preserved() {
        let mut store = PageStore::new();
        let mut data = vec![0u8; 16 * 1024];
        data[100] = 42;
        store.write(0, &data);
        assert!(store.resident_bytes() <= 101);
        assert_eq!(store.read(0, 16 * 1024)[100], 42);
    }

    #[test]
    fn oracle_serves_registered_range() {
        let mut store = PageStore::new();
        store.register_oracle(10..20, Arc::new(SeqOracle));
        let page = store.read(12, 32);
        assert_eq!(page[0], 12);
        assert_eq!(page[1], 0xAB);
        // Outside the range: zeros.
        assert!(store.read(9, 32).iter().all(|&b| b == 0));
    }

    #[test]
    fn explicit_write_shadows_oracle() {
        let mut store = PageStore::new();
        store.register_oracle(0..100, Arc::new(SeqOracle));
        store.write(50, &[9, 9, 9]);
        assert_eq!(&store.read(50, 8)[..3], &[9, 9, 9]);
    }

    #[test]
    fn later_oracle_shadows_earlier() {
        #[derive(Debug)]
        struct Const(u8);
        impl PageOracle for Const {
            fn fill_page(&self, _i: u64, out: &mut [u8]) {
                out[0] = self.0;
            }
        }
        let mut store = PageStore::new();
        store.register_oracle(0..10, Arc::new(Const(1)));
        store.register_oracle(5..10, Arc::new(Const(2)));
        assert_eq!(store.read(3, 4)[0], 1);
        assert_eq!(store.read(7, 4)[0], 2);
    }

    #[test]
    fn erase_tombstones_oracle_pages() {
        let mut store = PageStore::new();
        store.register_oracle(0..10, Arc::new(SeqOracle));
        assert_eq!(store.read(4, 8)[1], 0xAB);
        store.erase(4);
        assert!(store.read(4, 8).iter().all(|&b| b == 0));
        // Re-writing revives the page with explicit data.
        store.write(4, &[7]);
        assert_eq!(store.read(4, 8)[0], 7);
    }

    #[test]
    fn erase_removes_explicit_pages() {
        let mut store = PageStore::new();
        store.write(1, &[1, 2, 3]);
        assert!(store.is_written(1));
        store.erase(1);
        assert!(!store.is_written(1));
        assert!(store.read(1, 8).iter().all(|&b| b == 0));
        assert_eq!(store.explicit_pages(), 0);
    }
}
