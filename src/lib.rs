//! Umbrella crate for the RecSSD reproduction: re-exports the full public
//! API so examples and downstream users can depend on one crate.
//!
//! See the [`recssd`] crate for the core library documentation, and the
//! repository's README / DESIGN.md / EXPERIMENTS.md for the system
//! overview and the per-figure reproduction record.
//!
//! ```
//! use recssd_suite::prelude::*;
//!
//! let mut sys = System::new(RecSsdConfig::small());
//! let spec = TableSpec::new(256, 16, Quantization::F32);
//! let img = TableImage::new(EmbeddingTable::procedural(spec, 0), PageLayout::Spread, 16 * 1024);
//! let table = sys.add_table(img);
//! let op = sys.submit(OpKind::ndp_sls(
//!     table,
//!     LookupBatch::new(vec![vec![1, 2, 250]]),
//!     SlsOptions::default(),
//! ));
//! sys.run_until_idle();
//! assert_eq!(sys.result(op).outputs.as_ref().unwrap().len(), 1);
//! ```

#![warn(missing_docs)]

pub use recssd;
pub use recssd_cache;
pub use recssd_embedding;
pub use recssd_flash;
pub use recssd_ftl;
pub use recssd_models;
pub use recssd_nvme;
pub use recssd_obs;
pub use recssd_placement;
pub use recssd_serving;
pub use recssd_sim;
pub use recssd_ssd;
pub use recssd_trace;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use recssd::{
        LookupBatch, NdpConfig, OpId, OpKind, OpResult, RecSsdConfig, SlsOptions, System, TableId,
    };
    pub use recssd_cache::{LruCache, StaticPartition, StaticPartitionBuilder};
    pub use recssd_embedding::{
        sls_reference, EmbeddingTable, PageLayout, Quantization, TableImage, TableSpec,
    };
    pub use recssd_models::{
        BatchGen, EmbeddingMode, MlpSpec, ModelClass, ModelConfig, ModelInstance,
    };
    pub use recssd_placement::{FreqProfiler, PlacementPlan, PlacementPolicy, TablePlacement};
    pub use recssd_serving::{
        bottleneck_report, chrome_trace_json, critical_path_report, request_critical_paths,
        utilization_timelines, validate_spans, BottleneckReport, CriticalPathReport, LoadGen,
        LoadMode, LoadReport, MetricValue, PathAttribution, Phase, RequestProfile, SchedulePolicy,
        ServingConfig, ServingRuntime, ShardMap, SlsPath, SpanRec, TraceCheck, TrafficSpec,
        UtilizationTimeline, WallPhaseReport,
    };
    pub use recssd_sim::{SimDuration, SimTime};
    pub use recssd_trace::{ArrivalProcess, LocalityK, LocalityTrace, ZipfTrace};
}
