//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of criterion's API the workspace benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple but
//! honest measurement loop: per sample, the iteration count is scaled so a
//! sample takes a measurable amount of wall-clock time, and the median
//! ns/iteration across samples is reported. Replace with the real
//! criterion by swapping the `[workspace.dependencies]` entry when network
//! access is available; no bench source changes are needed.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benched
/// work. Forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Timing loop handed to the closure of [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the sample's iteration count, timing the whole run.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver (a small subset of criterion's).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up budget before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// No-op (CLI filtering is not supported offline); kept for
    /// source compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark and prints a `name: time/iter` line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Warm-up: find an iteration count where one sample takes roughly
        // measurement_time / sample_size, starting from a single call.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_deadline = Instant::now() + self.warm_up_time;
        let target = self.measurement_time / self.sample_size as u32;
        loop {
            f(&mut b);
            if b.elapsed >= target || Instant::now() >= warm_deadline {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16
            } else {
                (target.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 16) as u64
            };
            b.iters = b.iters.saturating_mul(grow);
        }
        let iters = b.iters;
        let mut per_iter_ns: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let (lo, hi) = (per_iter_ns[0], per_iter_ns[per_iter_ns.len() - 1]);
        println!(
            "{name:<44} {} [{} .. {}] ({iters} iters/sample)",
            fmt_ns(median),
            fmt_ns(lo),
            fmt_ns(hi)
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:8.1} ns")
    } else if ns < 1e6 {
        format!("{:8.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:8.2} ms", ns / 1e6)
    } else {
        format!("{:8.2} s ", ns / 1e9)
    }
}

/// Declares a benchmark group: either the plain
/// `criterion_group!(name, fn_a, fn_b)` form or the configured
/// `criterion_group! { name = ...; config = ...; targets = ... }` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop_add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(black_box(1));
                x
            })
        });
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        targets = quick
    }

    #[test]
    fn group_runs_to_completion() {
        benches();
    }

    #[test]
    fn bencher_records_elapsed() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        b.iter(|| black_box(3u32).pow(2));
        assert!(b.elapsed > Duration::ZERO || b.elapsed.is_zero()); // ran without panic
    }
}
