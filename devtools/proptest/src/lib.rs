//! Offline stand-in for the `proptest` property-testing framework.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of proptest's API the workspace tests use: the
//! [`proptest!`] macro (including `#![proptest_config(...)]`), integer
//! range strategies, tuples of strategies, [`bool::ANY`],
//! [`collection::vec`] and the `prop_assert*` macros.
//!
//! Inputs are drawn from a deterministic SplitMix64 stream seeded per
//! test (by test name), so failures reproduce exactly across runs and
//! platforms. Shrinking is not implemented — a failing case panics with
//! the values visible in the assertion message. Swap the
//! `[workspace.dependencies]` entry for the real proptest when network
//! access is available; no test source changes are needed.

use std::ops::Range;

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream; tests derive the seed from their name so cases
    /// differ between tests but never between runs.
    pub fn seed_from(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded draw; bias is negligible for test inputs.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                // Signed-safe span: i128 holds every supported domain,
                // including negative starts and the full u64 range.
                let span = (self.end as i128) - (self.start as i128);
                if span > u64::MAX as i128 {
                    return rng.next_u64() as $t;
                }
                (self.start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Draws `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy over `element` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-test configuration (case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Stable seed from a test's name, so each property gets its own
/// deterministic stream.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a, enough to decorrelate test streams.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        h = (h ^ *b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::seed_from($crate::seed_for(stringify!($name)));
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                let run = || -> () { $body };
                let _ = case;
                run();
            }
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::seed_from(1);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let s = Strategy::sample(&(0usize..1), &mut rng);
            assert_eq!(s, 0);
        }
    }

    #[test]
    fn full_u64_domain_does_not_panic() {
        let mut rng = crate::TestRng::seed_from(2);
        for _ in 0..100 {
            let _ = Strategy::sample(&(0u64..u64::MAX), &mut rng);
        }
    }

    #[test]
    fn negative_signed_ranges_respect_bounds() {
        let mut rng = crate::TestRng::seed_from(7);
        let mut saw_negative = false;
        for _ in 0..500 {
            let v = Strategy::sample(&(-5i32..5), &mut rng);
            assert!((-5..5).contains(&v));
            saw_negative |= v < 0;
            let w = Strategy::sample(&(i64::MIN..i64::MAX), &mut rng);
            let _ = w;
        }
        assert!(saw_negative, "negative half of the range never sampled");
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = crate::TestRng::seed_from(3);
        for _ in 0..200 {
            let v = Strategy::sample(&crate::collection::vec((0u8..4, 0u64..9), 1..30), &mut rng);
            assert!((1..30).contains(&v.len()));
            assert!(v.iter().all(|(k, x)| *k < 4 && *x < 9));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let draw = || {
            let mut rng = crate::TestRng::seed_from(crate::seed_for("x"));
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_itself_works(a in 0u32..100, flip in crate::bool::ANY) {
            prop_assert!(a < 100);
            let _ = flip;
        }
    }
}
