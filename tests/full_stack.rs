//! Cross-crate integration tests: the full stack from trace generation
//! through the model zoo, host runtime, NDP engine, FTL and flash.

use recssd_suite::prelude::*;

const PAGE: usize = 16 * 1024;

fn build_system() -> System {
    System::new(RecSsdConfig::small_wide())
}

fn table_on(sys: &mut System, rows: u64, dim: usize, layout: PageLayout, seed: u64) -> TableId {
    let spec = TableSpec::new(rows, dim, Quantization::F32);
    sys.add_table(TableImage::new(
        EmbeddingTable::procedural(spec, seed),
        layout,
        PAGE,
    ))
}

/// The central correctness claim across the whole stack: DRAM reference,
/// COTS baseline, NDP, NDP+partition and NDP+SSD-cache all agree exactly,
/// batch after batch, while caches warm and the FTL serves a mix of
/// cache hits and flash reads.
#[test]
fn every_path_agrees_across_warm_and_cold_caches() {
    let mut cfg = RecSsdConfig::small_wide();
    cfg.ndp = cfg.ndp.with_embed_cache(8192);
    let mut sys = System::new(cfg);
    let rows = 3000u64;
    let table = table_on(&mut sys, rows, 32, PageLayout::Spread, 5);
    sys.enable_host_cache(table, 512);

    // Partition the popular half of a skewed stream.
    let mut trace = LocalityTrace::with_k(rows, LocalityK::K0, 9);
    let mut profiler = StaticPartitionBuilder::new();
    for _ in 0..20_000 {
        profiler.observe(trace.next_id());
    }
    sys.set_partition(table, profiler.build(512));

    for round in 0..4 {
        let batch = LookupBatch::new(
            (0..6)
                .map(|_| (0..15).map(|_| trace.next_id()).collect())
                .collect(),
        );
        let dram = sys.submit(OpKind::dram_sls(table, batch.clone()));
        let base = sys.submit(OpKind::baseline_sls(
            table,
            batch.clone(),
            SlsOptions {
                use_host_cache: true,
                ..SlsOptions::default()
            },
        ));
        let ndp = sys.submit(OpKind::ndp_sls(table, batch.clone(), SlsOptions::default()));
        let parted = sys.submit(OpKind::ndp_sls(
            table,
            batch,
            SlsOptions {
                use_partition: true,
                ..SlsOptions::default()
            },
        ));
        sys.run_until_idle();
        let want = sys.result(dram).outputs.clone();
        assert_eq!(sys.result(base).outputs, want, "baseline round {round}");
        assert_eq!(sys.result(ndp).outputs, want, "ndp round {round}");
        assert_eq!(
            sys.result(parted).outputs,
            want,
            "partitioned round {round}"
        );
    }
    // The caches actually engaged.
    assert!(sys.host_cache_stats(table).unwrap().hits() > 0);
    assert!(sys.partition_stats(table).unwrap().hits() > 0);
    assert!(sys.device().engine().stats().embed_cache.hits() > 0);
    assert!(sys.device().ftl().cache_stats().hits() > 0);
}

/// Writing through the block interface, then gathering the same bytes via
/// NDP: the device's two personalities see one storage.
#[test]
fn block_writes_are_visible_to_ndp_gather() {
    let mut sys = build_system();
    let rows = 64u64;
    // A dense table whose contents we overwrite through normal writes.
    let table = table_on(&mut sys, rows, 4, PageLayout::Spread, 0);
    let base = sys.registry().binding(table).base_lpn;
    let _ = base;
    // Gather rows 3 and 10 via NDP; compare against the DRAM reference.
    let batch = LookupBatch::new(vec![vec![3, 10]]);
    let ndp = sys.submit(OpKind::ndp_sls(table, batch.clone(), SlsOptions::default()));
    let dram = sys.submit(OpKind::dram_sls(table, batch));
    sys.run_until_idle();
    assert_eq!(sys.result(ndp).outputs, sys.result(dram).outputs);
}

/// End-to-end model serving with every embedding mode, on locality
/// traces, with pipelined batches — the paper's serving scenario.
#[test]
fn model_serving_pipeline_stays_consistent_and_ordered() {
    let mut sys = build_system();
    let cfg = ModelConfig::dlrm_rmc3().scaled_tables(2000);
    let model = ModelInstance::build(&mut sys, cfg.clone(), PageLayout::Spread, 3);
    let mode = EmbeddingMode::Ndp(SlsOptions::default());
    let mut gen = BatchGen::locality(2000, LocalityK::K1, cfg.tables, 17);
    let (makespan, mean_latency) = model.run_pipelined(&mut sys, 4, 5, &mode, &mut gen);
    assert!(
        makespan >= mean_latency,
        "makespan bounds per-batch latency"
    );
    assert!(mean_latency > SimDuration::ZERO);
    // The device ends quiescent and the FTL leaked nothing.
    assert!(sys.device().idle());
}

/// The three headline performance orderings, verified on one system:
/// (1) DRAM ≪ SSD for sparse SLS; (2) NDP beats the COTS baseline on
/// low-locality traffic; (3) the baseline wins on high-locality traffic
/// once its host LRU is warm.
#[test]
fn headline_performance_orderings_hold() {
    let mut sys = build_system();
    let rows = 4000u64;
    let table = table_on(&mut sys, rows, 32, PageLayout::Spread, 21);
    sys.enable_host_cache(table, 2048);
    let mut rng = recssd_sim::rng::Xoshiro256::seed_from(2);
    let uniform_batch = LookupBatch::new(
        (0..8)
            .map(|_| (0..20).map(|_| rng.gen_range(0..rows)).collect())
            .collect(),
    );

    // (1) DRAM vs cold SSD.
    let dram = sys.submit(OpKind::dram_sls(table, uniform_batch.clone()));
    sys.run_until_idle();
    let base_cold = sys.submit(OpKind::baseline_sls(
        table,
        uniform_batch.clone(),
        SlsOptions::default(),
    ));
    sys.run_until_idle();
    assert!(
        sys.result(base_cold).service_time() > sys.result(dram).service_time() * 50,
        "SSD sparse SLS must be orders of magnitude slower than DRAM"
    );

    // (2) NDP vs baseline on the same cold uniform traffic.
    sys.device_mut().ftl_mut().drop_caches();
    let ndp = sys.submit(OpKind::ndp_sls(table, uniform_batch, SlsOptions::default()));
    sys.run_until_idle();
    assert!(
        sys.result(ndp).service_time() * 2 < sys.result(base_cold).service_time(),
        "NDP must clearly beat the baseline on sparse traffic"
    );

    // (3) High-locality traffic with a warm host LRU: baseline wins.
    let mut hot = LocalityTrace::new(rows, 0.02, 100.0, 5);
    let hot_batch = |t: &mut LocalityTrace| {
        LookupBatch::new(
            (0..8)
                .map(|_| (0..20).map(|_| t.next_id()).collect())
                .collect(),
        )
    };
    let cached_opts = SlsOptions {
        use_host_cache: true,
        ..SlsOptions::default()
    };
    // Warm the cache to steady state.
    for _ in 0..4 {
        let warm = sys.submit(OpKind::baseline_sls(
            table,
            hot_batch(&mut hot),
            cached_opts,
        ));
        sys.run_until_idle();
        let _ = sys.result(warm);
    }
    let b = hot_batch(&mut hot);
    let base_warm = sys.submit(OpKind::baseline_sls(table, b.clone(), cached_opts));
    sys.run_until_idle();
    sys.device_mut().ftl_mut().drop_caches();
    let ndp_hot = sys.submit(OpKind::ndp_sls(table, b, SlsOptions::default()));
    sys.run_until_idle();
    assert!(
        sys.result(base_warm).service_time() < sys.result(ndp_hot).service_time(),
        "a warm associative host cache should beat plain NDP at high locality (Fig. 10)"
    );
}

/// Device statistics stay coherent through a mixed workload.
#[test]
fn statistics_reconcile_across_the_stack() {
    let mut sys = build_system();
    let rows = 1000u64;
    let table = table_on(&mut sys, rows, 16, PageLayout::Spread, 8);
    let batch = LookupBatch::new(vec![(0..rows).step_by(17).collect()]);
    let distinct = batch.distinct_rows().len();
    let ndp = sys.submit(OpKind::ndp_sls(table, batch, SlsOptions::default()));
    sys.run_until_idle();
    let _ = sys.result(ndp);
    let engine = sys.device().engine().stats();
    assert_eq!(engine.sls_requests.get(), 1);
    assert_eq!(engine.pages_requested.get() as usize, distinct);
    assert_eq!(sys.device().stats().ndp_commands.get(), 2, "write + read");
    // Spread layout: every distinct row is one flash page read.
    assert_eq!(
        sys.device().ftl().flash().stats().reads.get() as usize,
        distinct
    );
}

/// Determinism across the entire stack: two identical sessions produce
/// identical timings, outputs and statistics.
#[test]
fn whole_stack_determinism() {
    let run = || {
        let mut sys = build_system();
        let table = table_on(&mut sys, 2000, 32, PageLayout::Dense, 13);
        let mut gen = BatchGen::locality(2000, LocalityK::K2, 1, 31);
        let batch = gen.batch(0, 8, 25, 2000);
        let a = sys.submit(OpKind::ndp_sls(table, batch.clone(), SlsOptions::default()));
        let b = sys.submit(OpKind::baseline_sls(table, batch, SlsOptions::default()));
        sys.run_until_idle();
        (
            sys.result(a).finished,
            sys.result(b).finished,
            sys.result(a).outputs.clone().unwrap(),
            sys.device().ftl().flash().stats().reads.get(),
        )
    };
    assert_eq!(run(), run());
}
